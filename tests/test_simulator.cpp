#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "simcore/kernel_stats.hpp"
#include "simcore/simulator.hpp"

namespace rupam {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = -1.0;
  sim.schedule_at(5.0, [&] { sim.schedule_after(2.5, [&] { fired = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired, 7.5);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_at(1.0, [&] { ++count; });
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or alter anything
  EXPECT_EQ(count, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1.0, chain);
  };
  sim.schedule_after(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, CancelledEventsSkippedInRun) {
  Simulator sim;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 50; ++i) handles.push_back(sim.schedule_at(1.0, [&] { ++fired; }));
  for (int i = 0; i < 50; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  sim.run();
  EXPECT_EQ(fired, 25);
}

TEST(Simulator, CancelRemovesFromQueueImmediately) {
  // cancel() is a true removal, not a tombstone: the queue is exactly empty
  // afterwards and empty() does not need a drain pass to notice.
  Simulator sim;
  EventHandle h = sim.schedule_at(1.0, [] {});
  EXPECT_FALSE(sim.empty());
  EXPECT_EQ(sim.pending_events(), 1u);
  h.cancel();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelHeavyChurnKeepsHeapBounded) {
  // The fair-share pattern: a population of far-future events that is
  // cancelled and re-pushed over and over. Live count must stay flat and
  // the arena must stop growing once the free list warms up.
  constexpr int kLive = 64;
  constexpr int kRounds = 1000;
  Simulator sim;
  std::vector<EventHandle> handles;
  handles.reserve(kLive);
  for (int i = 0; i < kLive; ++i) {
    handles.push_back(sim.schedule_at(100.0 + i, [] {}));
  }
  const KernelStats warm = sim.stats();
  for (int round = 0; round < kRounds; ++round) {
    for (EventHandle& h : handles) h.cancel();
    for (int i = 0; i < kLive; ++i) {
      handles[static_cast<std::size_t>(i)] = sim.schedule_at(100.0 + i, [] {});
    }
  }
  const KernelStats after = sim.stats();
  EXPECT_EQ(sim.pending_events(), static_cast<std::size_t>(kLive));
  EXPECT_LE(sim.peak_pending_events(), static_cast<std::size_t>(kLive));
  EXPECT_EQ(after.arena_slot_allocs, warm.arena_slot_allocs);  // slots reused, not grown
  EXPECT_EQ(after.events_cancelled - warm.events_cancelled,
            static_cast<std::uint64_t>(kLive) * kRounds);
  for (EventHandle& h : handles) h.cancel();
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, FifoPreservedAcrossCancelRepushCycles) {
  // Same-time FIFO must survive arbitrary cancel/repush churn: survivors
  // keep their original admission order, re-pushed events queue behind them.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 30; ++i) {
    handles.push_back(sim.schedule_at(5.0, [&order, i] { order.push_back(i); }));
  }
  std::vector<int> expect;
  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 0) {
      handles[static_cast<std::size_t>(i)].cancel();
    } else {
      expect.push_back(i);
    }
  }
  for (int i = 0; i < 30; i += 3) {  // re-admit the cancelled ids, same timestamp
    handles[static_cast<std::size_t>(i)] = sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
    expect.push_back(i);
  }
  sim.run();
  EXPECT_EQ(order, expect);
}

TEST(Simulator, StaleHandleCannotTouchReusedSlot) {
  // After an event fires its arena slot is recycled. A handle to the dead
  // event must read as not-pending and its cancel() must be a no-op even
  // when a brand-new event now occupies the same slot.
  Simulator sim;
  int first = 0, second = 0;
  EventHandle stale = sim.schedule_at(1.0, [&] { ++first; });
  sim.run();
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(stale.pending());
  EventHandle fresh = sim.schedule_at(2.0, [&] { ++second; });  // reuses the freed slot
  stale.cancel();                                               // generation mismatch: no-op
  EXPECT_TRUE(fresh.pending());
  sim.run();
  EXPECT_EQ(second, 1);
}

TEST(Simulator, SelfCancelInsideCallbackIsNoop) {
  Simulator sim;
  int fired = 0;
  EventHandle h;
  h = sim.schedule_at(1.0, [&] {
    ++fired;
    EXPECT_FALSE(h.pending());  // already dequeued by the time we run
    h.cancel();
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ExecutedEventsCountsFiringsOnly) {
  Simulator sim;
  const std::size_t base = sim.executed_events();
  EXPECT_EQ(base, 0u);
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EventHandle doomed = sim.schedule_at(3.0, [] {});
  doomed.cancel();
  sim.run();
  EXPECT_EQ(sim.executed_events(), 2u);  // cancellations are not executions
}

TEST(Simulator, OversizedCaptureFallsBackToHeapAndRuns) {
  // Captures beyond the inline buffer take the (counted) heap path but must
  // behave identically.
  Simulator sim;
  std::array<char, 128> payload{};
  payload[0] = 42;
  int seen = -1;
  const std::uint64_t before = sim.stats().callback_heap_allocs;
  sim.schedule_at(1.0, [payload, &seen] { seen = payload[0]; });
  EXPECT_GT(sim.stats().callback_heap_allocs, before);
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(Simulator, InterleavedSimulatorsKeepIndependentStats) {
  // Two simulators stepped in lockstep in one process: every counter must
  // stay per-instance (the sweep orchestrator runs many at once).
  Simulator a;
  Simulator b;
  int fired_a = 0, fired_b = 0;
  for (int i = 0; i < 10; ++i) {
    a.schedule_at(1.0 + i, [&fired_a] { ++fired_a; });
  }
  for (int i = 0; i < 3; ++i) {
    b.schedule_at(1.0 + i, [&fired_b] { ++fired_b; });
  }
  EventHandle doomed = b.schedule_at(50.0, [] {});
  doomed.cancel();
  // Interleave: one step of each until both drain.
  while (a.step() | static_cast<int>(b.step())) {
  }
  EXPECT_EQ(fired_a, 10);
  EXPECT_EQ(fired_b, 3);
  EXPECT_EQ(a.stats().events_scheduled, 10u);
  EXPECT_EQ(a.stats().events_executed, 10u);
  EXPECT_EQ(a.stats().events_cancelled, 0u);
  EXPECT_EQ(b.stats().events_scheduled, 4u);
  EXPECT_EQ(b.stats().events_executed, 3u);
  EXPECT_EQ(b.stats().events_cancelled, 1u);
  EXPECT_EQ(a.stats().arena_slot_allocs, 10u);
  EXPECT_EQ(b.stats().arena_slot_allocs, 4u);
}

}  // namespace
}  // namespace rupam
