#include <gtest/gtest.h>

#include "simcore/simulator.hpp"

namespace rupam {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = -1.0;
  sim.schedule_at(5.0, [&] { sim.schedule_after(2.5, [&] { fired = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired, 7.5);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_at(1.0, [&] { ++count; });
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or alter anything
  EXPECT_EQ(count, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1.0, chain);
  };
  sim.schedule_after(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, CancelledEventsSkippedInRun) {
  Simulator sim;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 50; ++i) handles.push_back(sim.schedule_at(1.0, [&] { ++fired; }));
  for (int i = 0; i < 50; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  sim.run();
  EXPECT_EQ(fired, 25);
}

}  // namespace
}  // namespace rupam
