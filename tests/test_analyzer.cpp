// Tests for the post-run analysis engine (obs/analyzer) and the cross-run
// comparator (obs/comparator): critical-path attribution exactness on
// synthetic span sets, straggler cause joins against hand-built event /
// audit artifacts, the Fig 3 end-to-end acceptance (PageRank on the
// motivation pair attributes stragglers to the slow node class), analyzer
// JSON determinism incl. sweep matrices at different thread counts, and
// CI-aware comparator verdicts.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "app/simulation.hpp"
#include "cluster/presets.hpp"
#include "common/json_reader.hpp"
#include "metrics/event_trace.hpp"
#include "obs/analyzer.hpp"
#include "obs/comparator.hpp"
#include "sweep/orchestrator.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

// ---------------------------------------------------------------- helpers

PhaseSpan span(SimTime start, SimTime end, TaskPhase phase, StageId stage, TaskId task,
               AttemptId attempt = 0, NodeId node = 0, bool truncated = false) {
  PhaseSpan s;
  s.start = start;
  s.end = end;
  s.phase = phase;
  s.stage = stage;
  s.task = task;
  s.attempt = attempt;
  s.node = node;
  s.truncated = truncated;
  return s;
}

JobCompletion job(JobId id, SimTime submitted, SimTime finished) {
  JobCompletion jc;
  jc.job = id;
  jc.name = "job-" + std::to_string(id);
  jc.submitted = submitted;
  jc.finished = finished;
  return jc;
}

TraceEvent event(TraceEventType type, SimTime time, NodeId node, StageId stage = -1,
                 TaskId task = -1) {
  TraceEvent e;
  e.type = type;
  e.time = time;
  e.node = node;
  e.stage = stage;
  e.task = task;
  return e;
}

std::vector<AnalyzerNodeInfo> uniform_nodes(int n, double cpu_perf = 1.0) {
  std::vector<AnalyzerNodeInfo> nodes;
  for (int i = 0; i < n; ++i) {
    AnalyzerNodeInfo info;
    info.id = i;
    info.name = "node-" + std::to_string(i);
    info.node_class = "uniform";
    info.cpu_perf = cpu_perf;
    nodes.push_back(info);
  }
  return nodes;
}

/// A stage of five one-attempt tasks: four take `fast` seconds of compute,
/// the fifth is shaped by `shape` (which appends the straggler's spans and
/// returns nothing). Used by every cause-join test below.
void add_fast_tasks(SpanTrace& trace, StageId stage, double fast = 1.0) {
  for (TaskId t = 0; t < 4; ++t) {
    double start = static_cast<double>(t);
    trace.record(span(start, start + fast, TaskPhase::kCompute, stage, t, 0, /*node=*/1));
  }
}

const StragglerReport* find_straggler(const RunDiagnosis& diag, StageId stage, TaskId task) {
  for (const StragglerReport& r : diag.stragglers) {
    if (r.stage == stage && r.task == task) return &r;
  }
  return nullptr;
}

std::string diagnosis_json(const RunDiagnosis& diag) {
  std::ostringstream os;
  write_diagnosis_json(diag, os);
  return os.str();
}

// ------------------------------------------------ critical-path tiling --

TEST(AnalyzerCriticalPath, SingleAttemptTilesJctExactly) {
  SpanTrace trace;
  trace.record(span(0.0, 2.0, TaskPhase::kQueued, 0, 0));
  trace.record(span(2.0, 3.0, TaskPhase::kInputRead, 0, 0));
  trace.record(span(3.0, 3.5, TaskPhase::kShuffleDiskRead, 0, 0));
  trace.record(span(3.5, 4.0, TaskPhase::kShuffleNetRead, 0, 0));
  trace.record(span(4.0, 8.0, TaskPhase::kCompute, 0, 0));
  trace.record(span(7.0, 8.0, TaskPhase::kGc, 0, 0));  // nested compute tail
  trace.record(span(8.0, 9.0, TaskPhase::kShuffleWrite, 0, 0));
  trace.record(span(8.5, 9.0, TaskPhase::kSpill, 0, 0));  // nested write tail
  trace.record(span(9.0, 9.5, TaskPhase::kOutputSend, 0, 0));

  RunArtifacts art;
  art.spans = &trace;
  art.jobs = {job(0, 0.0, 10.0)};

  RunDiagnosis diag = analyze_run(art);
  ASSERT_EQ(diag.jobs.size(), 1u);
  const PhaseAttribution& a = diag.jobs[0].critical_path;
  EXPECT_DOUBLE_EQ(a.queueing, 2.0);
  EXPECT_DOUBLE_EQ(a.input_read, 1.0);
  EXPECT_DOUBLE_EQ(a.shuffle_read, 1.0);
  EXPECT_DOUBLE_EQ(a.compute, 3.0);  // 4 s of compute minus the nested GC
  EXPECT_DOUBLE_EQ(a.gc, 1.0);
  EXPECT_DOUBLE_EQ(a.shuffle_write, 0.5);  // 1 s of write minus the spill
  EXPECT_DOUBLE_EQ(a.spill, 0.5);
  EXPECT_DOUBLE_EQ(a.output_send, 0.5);
  EXPECT_DOUBLE_EQ(a.driver, 0.5);  // span end 9.5 → job finish 10
  EXPECT_NEAR(a.total(), diag.jobs[0].jct, 1e-9);
  ASSERT_EQ(diag.jobs[0].path.size(), 1u);
  EXPECT_DOUBLE_EQ(diag.jobs[0].path[0].gap_after, 0.5);
}

TEST(AnalyzerCriticalPath, WalksShuffleParentsAndChargesGapsToDriver) {
  SpanTrace trace;
  // Map stage 0 runs [0, 4]; reduce stage 1 runs [5, 9]; job ends at 9.5.
  trace.record(span(0.0, 4.0, TaskPhase::kCompute, 0, 0));
  trace.record(span(5.0, 9.0, TaskPhase::kCompute, 1, 100));

  RunArtifacts art;
  art.spans = &trace;
  art.jobs = {job(0, 0.0, 9.5)};
  art.stage_job = {{0, 0}, {1, 0}};
  art.stage_parents = {{1, {0}}};

  RunDiagnosis diag = analyze_run(art);
  ASSERT_EQ(diag.jobs.size(), 1u);
  const JobDiagnosis& j = diag.jobs[0];
  EXPECT_NEAR(j.critical_path.total(), j.jct, 1e-9);
  EXPECT_DOUBLE_EQ(j.critical_path.compute, 8.0);
  EXPECT_DOUBLE_EQ(j.critical_path.driver, 1.5);  // 0.5 tail + 1.0 inter-stage
  // Path is chronological: map before reduce.
  ASSERT_EQ(j.path.size(), 2u);
  EXPECT_EQ(j.path[0].stage, 0);
  EXPECT_EQ(j.path[1].stage, 1);
  EXPECT_DOUBLE_EQ(j.path[0].gap_after, 1.0);
  EXPECT_DOUBLE_EQ(j.path[1].gap_after, 0.5);
}

TEST(AnalyzerCriticalPath, RetriesStillSumToJct) {
  SpanTrace trace;
  // Attempt 0 dies mid-compute; attempt 1 relaunches and completes.
  trace.record(span(0.0, 1.0, TaskPhase::kQueued, 0, 0, 0));
  trace.record(span(1.0, 3.0, TaskPhase::kCompute, 0, 0, 0, 0, /*truncated=*/true));
  trace.record(span(3.0, 4.0, TaskPhase::kQueued, 0, 0, 1));
  trace.record(span(4.0, 9.0, TaskPhase::kCompute, 0, 0, 1));

  RunArtifacts art;
  art.spans = &trace;
  art.jobs = {job(0, 0.0, 10.0)};

  RunDiagnosis diag = analyze_run(art);
  ASSERT_EQ(diag.jobs.size(), 1u);
  const JobDiagnosis& j = diag.jobs[0];
  EXPECT_NEAR(j.critical_path.total(), j.jct, 1e-9);
  EXPECT_DOUBLE_EQ(j.critical_path.queueing, 2.0);
  EXPECT_DOUBLE_EQ(j.critical_path.compute, 7.0);
  EXPECT_DOUBLE_EQ(j.critical_path.driver, 1.0);
  EXPECT_EQ(diag.attempts, 2u);
  EXPECT_EQ(diag.tasks, 1u);
}

TEST(AnalyzerCriticalPath, RequiresSpans) {
  RunArtifacts art;
  EXPECT_THROW(analyze_run(art), std::invalid_argument);
}

// ------------------------------------------------------- cause joins ----

TEST(AnalyzerStraggler, SlowNodeClassFromCapabilityJoin) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  trace.record(span(0.0, 4.0, TaskPhase::kCompute, 0, 4, 0, /*node=*/0));

  RunArtifacts art;
  art.spans = &trace;
  art.nodes = uniform_nodes(2);
  art.nodes[0].node_class = "wimpy";
  art.nodes[0].cpu_perf = 0.6;

  RunDiagnosis diag = analyze_run(art);
  const StragglerReport* r = find_straggler(diag, 0, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->cause, StragglerCause::kSlowNodeClass);
  EXPECT_EQ(r->node_class, "wimpy");
  EXPECT_NE(r->detail.find("class=wimpy"), std::string::npos);
  EXPECT_GT(r->ratio, 1.5);
  EXPECT_EQ(diag.stragglers_by_cause[static_cast<std::size_t>(StragglerCause::kSlowNodeClass)],
            1u);
}

TEST(AnalyzerStraggler, PoolPreemptionOutranksEverything) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  trace.record(span(0.0, 1.5, TaskPhase::kCompute, 0, 4, 0, 0, /*truncated=*/true));
  trace.record(span(2.0, 6.0, TaskPhase::kCompute, 0, 4, 1, 0));

  EventTrace events;
  // A drain on the same node would also match — preemption must win.
  events.record(event(TraceEventType::kNodeDraining, 1.0, 0));
  events.record(event(TraceEventType::kTaskPreempted, 1.5, 0, 0, 4));

  RunArtifacts art;
  art.spans = &trace;
  art.trace = &events;
  art.nodes = uniform_nodes(2);

  RunDiagnosis diag = analyze_run(art);
  const StragglerReport* r = find_straggler(diag, 0, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->cause, StragglerCause::kPoolPreemption);
  EXPECT_NE(r->detail.find("preempted_at="), std::string::npos);
}

TEST(AnalyzerStraggler, SpotDrainFromLostAttemptJoin) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  // Attempt 0 truncated on node 2 while the node drained; retry completes.
  trace.record(span(0.0, 1.0, TaskPhase::kCompute, 0, 4, 0, /*node=*/2, /*truncated=*/true));
  trace.record(span(1.2, 6.0, TaskPhase::kCompute, 0, 4, 1, /*node=*/1));

  EventTrace events;
  events.record(event(TraceEventType::kNodeDraining, 0.5, 2));

  RunArtifacts art;
  art.spans = &trace;
  art.trace = &events;
  art.nodes = uniform_nodes(3);

  RunDiagnosis diag = analyze_run(art);
  const StragglerReport* r = find_straggler(diag, 0, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->cause, StragglerCause::kSpotDrain);
  EXPECT_NE(r->detail.find("drained_node=2"), std::string::npos);
}

TEST(AnalyzerStraggler, NodeFaultFromLostAttemptJoin) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  trace.record(span(0.0, 1.0, TaskPhase::kCompute, 0, 4, 0, /*node=*/2, /*truncated=*/true));
  trace.record(span(1.2, 6.0, TaskPhase::kCompute, 0, 4, 1, /*node=*/1));

  EventTrace events;
  events.record(event(TraceEventType::kExecutorLost, 0.9, 2));

  RunArtifacts art;
  art.spans = &trace;
  art.trace = &events;
  art.nodes = uniform_nodes(3);

  RunDiagnosis diag = analyze_run(art);
  const StragglerReport* r = find_straggler(diag, 0, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->cause, StragglerCause::kNodeFault);
  EXPECT_NE(r->detail.find("failed_node=2"), std::string::npos);
}

TEST(AnalyzerStraggler, BlacklistReboundWithinWindow) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  trace.record(span(0.0, 20.0, TaskPhase::kQueued, 0, 4, 0, /*node=*/2));
  trace.record(span(20.0, 24.0, TaskPhase::kCompute, 0, 4, 0, /*node=*/2));

  EventTrace events;
  events.record(event(TraceEventType::kNodeUnblacklisted, 15.0, 2));  // 5 s before launch

  RunArtifacts art;
  art.spans = &trace;
  art.trace = &events;
  art.nodes = uniform_nodes(3);

  RunDiagnosis diag = analyze_run(art);
  const StragglerReport* r = find_straggler(diag, 0, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->cause, StragglerCause::kBlacklistRebound);
  EXPECT_NE(r->detail.find("unblacklisted_at="), std::string::npos);
}

TEST(AnalyzerStraggler, GpuContentionFromAuditReason) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  trace.record(span(0.0, 4.0, TaskPhase::kCompute, 0, 4, 0, /*node=*/0));

  DecisionAudit audit;
  DispatchDecision dec;
  dec.stage = 0;
  dec.task = 4;
  dec.attempt = 0;
  dec.node = 0;
  dec.queue = ResourceKind::kGpu;
  dec.reason = "rupam_gpu_race";
  audit.record(dec);

  RunArtifacts art;
  art.spans = &trace;
  art.audit = &audit;
  art.nodes = uniform_nodes(2);  // equal cpu_perf: capability join stays quiet

  RunDiagnosis diag = analyze_run(art);
  const StragglerReport* r = find_straggler(diag, 0, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->cause, StragglerCause::kGpuContention);
  EXPECT_NE(r->detail.find("rupam_gpu_race"), std::string::npos);
}

TEST(AnalyzerStraggler, GcPressureAndShuffleSkewFromPhaseShape) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  // Task 4: GC owns 1.5 s of a 4 s service (share 0.375 > 0.25).
  trace.record(span(0.0, 4.0, TaskPhase::kCompute, 0, 4, 0, /*node=*/0));
  trace.record(span(2.5, 4.0, TaskPhase::kGc, 0, 4, 0, /*node=*/0));
  // Task 5: shuffle read owns 3 s of 4 s (share 0.75 > 0.5).
  trace.record(span(0.0, 3.0, TaskPhase::kShuffleNetRead, 0, 5, 0, /*node=*/0));
  trace.record(span(3.0, 4.0, TaskPhase::kCompute, 0, 5, 0, /*node=*/0));

  RunArtifacts art;
  art.spans = &trace;
  art.nodes = uniform_nodes(2);

  RunDiagnosis diag = analyze_run(art);
  const StragglerReport* gc = find_straggler(diag, 0, 4);
  ASSERT_NE(gc, nullptr);
  EXPECT_EQ(gc->cause, StragglerCause::kGcPressure);
  const StragglerReport* skew = find_straggler(diag, 0, 5);
  ASSERT_NE(skew, nullptr);
  EXPECT_EQ(skew->cause, StragglerCause::kShuffleSkew);
}

TEST(AnalyzerStraggler, UnknownWhenNothingJoins) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  trace.record(span(0.0, 4.0, TaskPhase::kCompute, 0, 4, 0, /*node=*/0));

  RunArtifacts art;
  art.spans = &trace;
  art.nodes = uniform_nodes(2);

  RunDiagnosis diag = analyze_run(art);
  const StragglerReport* r = find_straggler(diag, 0, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->cause, StragglerCause::kUnknown);
  EXPECT_NE(r->detail.find("ratio="), std::string::npos);
}

TEST(AnalyzerStraggler, SmallStagesHaveNoMedian) {
  SpanTrace trace;
  trace.record(span(0.0, 1.0, TaskPhase::kCompute, 0, 0));
  trace.record(span(0.0, 40.0, TaskPhase::kCompute, 0, 1));  // 2 tasks < min 3

  RunArtifacts art;
  art.spans = &trace;

  RunDiagnosis diag = analyze_run(art);
  EXPECT_TRUE(diag.stragglers.empty());
}

// ------------------------------------------------------ determinism -----

TEST(AnalyzerJson, ByteIdenticalAcrossRuns) {
  SpanTrace trace;
  add_fast_tasks(trace, 0);
  trace.record(span(0.0, 1.0, TaskPhase::kQueued, 0, 4, 0, 0));
  trace.record(span(1.0, 3.0, TaskPhase::kCompute, 0, 4, 0, 0, /*truncated=*/true));
  trace.record(span(3.5, 4.0, TaskPhase::kQueued, 0, 4, 1, 1));
  trace.record(span(4.0, 9.0, TaskPhase::kCompute, 0, 4, 1, 1));

  EventTrace events;
  events.record(event(TraceEventType::kExecutorLost, 2.9, 0));

  RunArtifacts art;
  art.spans = &trace;
  art.trace = &events;
  art.jobs = {job(0, 0.0, 9.25)};
  art.nodes = uniform_nodes(2);

  std::string first = diagnosis_json(analyze_run(art));
  std::string second = diagnosis_json(analyze_run(art));
  EXPECT_EQ(first, second);
  // The document parses and carries the documented schema.
  JsonValue doc = parse_json(first);
  ASSERT_NE(doc.find("summary"), nullptr);
  ASSERT_NE(doc.find("jobs"), nullptr);
  ASSERT_NE(doc.find("stragglers"), nullptr);
  const JsonValue* by_cause = doc.find("summary")->find("stragglers_by_cause");
  ASSERT_NE(by_cause, nullptr);
  EXPECT_NE(by_cause->find("node_fault"), nullptr);
}

TEST(SweepAnalyzer, MatrixJsonIdenticalAtAnyThreadCount) {
  SweepSpec spec;
  spec.name = "analyze-threads";
  spec.base_seed = 11;
  spec.replications = 2;
  spec.schedulers = {SchedulerKind::kSpark};
  spec.fleet_sizes = {12};
  spec.arrival_rates = {0.1};
  spec.duration = 40.0;
  spec.max_apps = 2;
  spec.mix = {"GM"};
  spec.analyze = true;

  SweepOptions one;
  one.threads = 1;
  SweepOptions many;
  many.threads = 3;
  std::string a = run_sweep(spec, one).to_json();
  std::string b = run_sweep(spec, many).to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"analyzer\""), std::string::npos);
  EXPECT_NE(a.find("\"by_cause\""), std::string::npos);
  EXPECT_NE(a.find("\"critical_path\""), std::string::npos);
}

// ------------------------------------------------- Fig 3 acceptance -----

TEST(AnalyzerFig3, PageRankOnMotivationPairBlamesSlowNodeClass) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.switch_bandwidth = gbit_per_s(10.0);
  {
    Simulator probe_sim;
    Cluster probe(probe_sim, gbit_per_s(10.0));
    build_motivation_pair(probe);
    for (NodeId id : probe.node_ids()) cfg.nodes.push_back(probe.node(id).spec());
  }
  cfg.enable_analysis = true;
  cfg.enable_spans = true;
  cfg.enable_audit = true;
  cfg.enable_trace = true;
  Simulation sim(cfg);

  WorkloadParams params;
  params.input_gb = 2.0;
  params.iterations = 1;
  params.seed = 1;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  sim.run(make_pagerank(sim.cluster().node_ids(), params));

  RunDiagnosis diag = analyze_run(sim.run_artifacts());
  ASSERT_FALSE(diag.jobs.empty());
  for (const JobDiagnosis& j : diag.jobs) {
    EXPECT_NEAR(j.critical_path.total(), j.jct, 1e-9) << "job " << j.job;
  }
  std::size_t slow =
      diag.stragglers_by_cause[static_cast<std::size_t>(StragglerCause::kSlowNodeClass)];
  EXPECT_GE(slow, 1u);
  bool found_detail = false;
  for (const StragglerReport& r : diag.stragglers) {
    if (r.cause == StragglerCause::kSlowNodeClass &&
        r.detail.find("class=slow-cpu") != std::string::npos) {
      found_detail = true;
      break;
    }
  }
  EXPECT_TRUE(found_detail);
}

// ------------------------------------------------------- comparator -----

TEST(Comparator, VerdictsRespectDirectionAndTolerance) {
  std::string base = R"({"makespan_s": 100.0, "events_per_s": 2.0e6, "noise_s": 10.0})";
  std::string test = R"({"makespan_s": 80.0, "events_per_s": 1.0e6, "noise_s": 10.1})";
  ComparisonReport rep = compare_json_text(base, test);
  ASSERT_EQ(rep.deltas.size(), 3u);
  EXPECT_EQ(rep.improved, 1u);      // makespan fell (lower is better)
  EXPECT_EQ(rep.regressed, 1u);     // throughput fell (higher is better)
  EXPECT_EQ(rep.within_noise, 1u);  // 1% move < 2% relative tolerance
  EXPECT_TRUE(rep.has_regressions());
  for (const MetricDelta& d : rep.deltas) {
    if (d.key == "makespan_s") {
      EXPECT_EQ(d.verdict, Verdict::kImproved);
    } else if (d.key == "events_per_s") {
      EXPECT_EQ(d.verdict, Verdict::kRegressed);
    } else if (d.key == "noise_s") {
      EXPECT_EQ(d.verdict, Verdict::kWithinNoise);
    }
  }
}

TEST(Comparator, ConfidenceIntervalsAbsorbLooseDeltas) {
  // 15% slower, but both CIs are wide: the move is not significant.
  std::string base = R"({"cells": [{"scheduler": "spark", "fleet_size": 12,
    "arrival_rate": 0.05, "fault_plan": "", "elastic": "",
    "makespan_s": {"n": 3, "mean": 10.0, "ci95": 1.0, "min": 9, "max": 11}}]})";
  std::string wide = R"({"cells": [{"scheduler": "spark", "fleet_size": 12,
    "arrival_rate": 0.05, "fault_plan": "", "elastic": "",
    "makespan_s": {"n": 3, "mean": 11.5, "ci95": 1.0, "min": 10, "max": 13}}]})";
  std::string tight = R"({"cells": [{"scheduler": "spark", "fleet_size": 12,
    "arrival_rate": 0.05, "fault_plan": "", "elastic": "",
    "makespan_s": {"n": 3, "mean": 11.5, "ci95": 0.1, "min": 11, "max": 12}}]})";

  ComparisonReport noisy = compare_json_text(base, wide);
  ASSERT_EQ(noisy.deltas.size(), 1u);
  EXPECT_EQ(noisy.deltas[0].verdict, Verdict::kWithinNoise);

  ComparisonReport confident = compare_json_text(base, tight);
  ASSERT_EQ(confident.deltas.size(), 1u);
  EXPECT_EQ(confident.deltas[0].verdict, Verdict::kRegressed);
  EXPECT_NE(confident.deltas[0].key.find("cell[spark,n=12"), std::string::npos);
}

TEST(Comparator, SkipsIdentityKeysAndReportsAsymmetry) {
  std::string base = R"({"seed": 1, "e2e_nodes": 100, "wall_ms": 50.0, "old_s": 1.0})";
  std::string test = R"({"seed": 2, "e2e_nodes": 100, "wall_ms": 50.0, "new_s": 1.0})";
  ComparisonReport rep = compare_json_text(base, test);
  for (const MetricDelta& d : rep.deltas) EXPECT_EQ(d.key.find("seed"), std::string::npos);
  ASSERT_EQ(rep.only_in_base.size(), 1u);
  EXPECT_EQ(rep.only_in_base[0], "old_s");
  ASSERT_EQ(rep.only_in_test.size(), 1u);
  EXPECT_EQ(rep.only_in_test[0], "new_s");
}

TEST(Comparator, SweepCellsCompareAnalyzerStragglerCounts) {
  std::string base = R"({"cells": [{"scheduler": "rupam", "fleet_size": 12,
    "arrival_rate": 0.05, "fault_plan": "", "elastic": "",
    "makespan_s": {"n": 2, "mean": 10.0, "ci95": 0.1},
    "analyzer": {"stragglers": 4}}]})";
  std::string test = R"({"cells": [{"scheduler": "rupam", "fleet_size": 12,
    "arrival_rate": 0.05, "fault_plan": "", "elastic": "",
    "makespan_s": {"n": 2, "mean": 10.0, "ci95": 0.1},
    "analyzer": {"stragglers": 9}}]})";
  ComparisonReport rep = compare_json_text(base, test);
  bool found = false;
  for (const MetricDelta& d : rep.deltas) {
    if (d.key.find("analyzer.stragglers") != std::string::npos) {
      found = true;
      EXPECT_EQ(d.verdict, Verdict::kRegressed);  // more stragglers is worse
    }
  }
  EXPECT_TRUE(found);
}

TEST(Comparator, JsonRoundTripsAndTablePrints) {
  ComparisonReport rep = compare_json_text(R"({"a_s": 1.0})", R"({"a_s": 2.0})");
  std::ostringstream os;
  write_comparison_json(rep, os);
  JsonValue doc = parse_json(os.str());
  ASSERT_NE(doc.find("metrics"), nullptr);
  EXPECT_EQ(doc.find("regressed")->as_number(), 1.0);

  std::ostringstream table;
  print_comparison(rep, table);
  EXPECT_NE(table.str().find("regressed"), std::string::npos);
}

TEST(Comparator, RejectsNonObjectDocuments) {
  EXPECT_THROW(compare_json_text("[1, 2]", "{}"), std::invalid_argument);
}

}  // namespace
}  // namespace rupam
