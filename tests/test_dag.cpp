#include <gtest/gtest.h>

#include <map>

#include "dag/dag_scheduler.hpp"
#include "dag/rdd.hpp"

namespace rupam {
namespace {

TaskSpec make_task(TaskId id, StageId stage, int partition) {
  TaskSpec t;
  t.id = id;
  t.stage = stage;
  t.stage_name = "s" + std::to_string(stage);
  t.partition = partition;
  return t;
}

Stage make_stage(StageId id, int tasks, std::vector<StageId> parents, TaskId base) {
  Stage s;
  s.id = id;
  s.name = "s" + std::to_string(id);
  s.parents = std::move(parents);
  s.tasks.stage = id;
  s.tasks.stage_name = s.name;
  for (int i = 0; i < tasks; ++i) s.tasks.tasks.push_back(make_task(base + i, id, i));
  return s;
}

TEST(Rdd, BlockKeyFormat) {
  Rdd rdd;
  rdd.id = 7;
  EXPECT_EQ(rdd.block_key(3), "rdd_7_3");
}

TEST(Rdd, TotalBytes) {
  Rdd rdd;
  rdd.partition_bytes = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(rdd.total_bytes(), 60.0);
  EXPECT_EQ(rdd.num_partitions(), 3u);
}

TEST(PlaceBlocks, UniformCoversAllNodes) {
  Rng rng(1);
  std::vector<NodeId> nodes{0, 1, 2, 3};
  auto placement = place_blocks(400, nodes, 2, rng);
  ASSERT_EQ(placement.size(), 400u);
  std::map<NodeId, int> counts;
  for (const auto& replicas : placement) {
    EXPECT_EQ(replicas.size(), 2u);
    EXPECT_NE(replicas[0], replicas[1]);  // distinct replicas
    for (NodeId n : replicas) counts[n]++;
  }
  for (NodeId n : nodes) {
    EXPECT_GT(counts[n], 150);  // ~200 each
    EXPECT_LT(counts[n], 250);
  }
}

TEST(PlaceBlocks, WeightsBiasPlacement) {
  Rng rng(1);
  std::vector<NodeId> nodes{0, 1};
  auto placement = place_blocks(600, nodes, 1, rng, {1.0, 3.0});
  int heavy = 0;
  for (const auto& replicas : placement) heavy += replicas[0] == 1;
  // Node 1 holds ~3/4 of the blocks.
  EXPECT_GT(heavy, 380);
  EXPECT_LT(heavy, 520);
}

TEST(PlaceBlocks, ReplicationClampedToNodeCount) {
  Rng rng(1);
  auto placement = place_blocks(10, {0, 1}, 3, rng);
  for (const auto& replicas : placement) EXPECT_EQ(replicas.size(), 2u);
}

TEST(PlaceBlocks, Validation) {
  Rng rng(1);
  EXPECT_THROW(place_blocks(10, {}, 1, rng), std::invalid_argument);
  EXPECT_THROW(place_blocks(10, {0}, 0, rng), std::invalid_argument);
  EXPECT_THROW(place_blocks(10, {0, 1}, 1, rng, {1.0}), std::invalid_argument);
}

TEST(JobValidation, CatchesBadDags) {
  Job job;
  job.stages.push_back(make_stage(0, 1, {}, 0));
  job.stages.push_back(make_stage(0, 1, {}, 10));  // duplicate id
  EXPECT_THROW(job.validate(), std::invalid_argument);

  Job job2;
  job2.stages.push_back(make_stage(0, 1, {5}, 0));  // unknown parent
  EXPECT_THROW(job2.validate(), std::invalid_argument);

  Job job3;
  Stage self = make_stage(1, 1, {}, 0);
  self.parents = {1};
  job3.stages.push_back(self);
  EXPECT_THROW(job3.validate(), std::invalid_argument);
}

TEST(ApplicationValidation, CatchesDuplicateTaskIds) {
  Application app;
  Job j1;
  j1.id = 0;
  j1.stages.push_back(make_stage(0, 2, {}, 0));
  Job j2;
  j2.id = 1;
  j2.stages.push_back(make_stage(1, 2, {}, 1));  // task id 1 reused
  app.jobs = {j1, j2};
  EXPECT_THROW(app.validate(), std::invalid_argument);
}

struct DagHarness {
  Simulator sim;
  std::vector<StageId> submitted;
  DagScheduler dag{sim, [this](const TaskSet& ts) { submitted.push_back(ts.stage); }};

  void finish_stage(const Application& app, StageId stage) {
    for (const auto& job : app.jobs) {
      for (const auto& s : job.stages) {
        if (s.id != stage) continue;
        for (const auto& t : s.tasks.tasks) dag.on_partition_success(stage, t.partition);
      }
    }
  }
};

TEST(DagScheduler, LinearStagesRunInOrder) {
  Application app;
  Job job;
  job.stages.push_back(make_stage(0, 2, {}, 0));
  job.stages.push_back(make_stage(1, 2, {0}, 10));
  app.jobs.push_back(job);

  DagHarness h;
  bool done = false;
  h.dag.run(app, [&] { done = true; });
  EXPECT_EQ(h.submitted, (std::vector<StageId>{0}));
  h.finish_stage(app, 0);
  EXPECT_EQ(h.submitted, (std::vector<StageId>{0, 1}));
  EXPECT_FALSE(done);
  h.finish_stage(app, 1);
  EXPECT_TRUE(done);
}

TEST(DagScheduler, IndependentStagesSubmittedTogether) {
  Application app;
  Job job;
  job.stages.push_back(make_stage(0, 1, {}, 0));
  job.stages.push_back(make_stage(1, 1, {}, 10));
  job.stages.push_back(make_stage(2, 1, {0, 1}, 20));
  app.jobs.push_back(job);

  DagHarness h;
  h.dag.run(app, nullptr);
  EXPECT_EQ(h.submitted.size(), 2u);  // 0 and 1 concurrently
  h.finish_stage(app, 0);
  EXPECT_EQ(h.submitted.size(), 2u);  // 2 still blocked on 1
  h.finish_stage(app, 1);
  EXPECT_EQ(h.submitted, (std::vector<StageId>{0, 1, 2}));
}

TEST(DagScheduler, JobsRunSequentially) {
  Application app;
  Job j1;
  j1.id = 0;
  j1.stages.push_back(make_stage(0, 1, {}, 0));
  Job j2;
  j2.id = 1;
  j2.stages.push_back(make_stage(1, 1, {}, 10));
  app.jobs = {j1, j2};

  DagHarness h;
  bool done = false;
  h.dag.run(app, [&] { done = true; });
  EXPECT_EQ(h.submitted, (std::vector<StageId>{0}));
  h.finish_stage(app, 0);
  EXPECT_EQ(h.submitted, (std::vector<StageId>{0, 1}));
  h.finish_stage(app, 1);
  EXPECT_TRUE(done);
  EXPECT_TRUE(h.dag.finished());
}

TEST(DagScheduler, DuplicateSuccessIgnored) {
  Application app;
  Job job;
  job.stages.push_back(make_stage(0, 2, {}, 0));
  app.jobs.push_back(job);
  DagHarness h;
  bool done = false;
  h.dag.run(app, [&] { done = true; });
  h.dag.on_partition_success(0, 0);
  h.dag.on_partition_success(0, 0);  // duplicate: must not complete stage
  EXPECT_FALSE(done);
  h.dag.on_partition_success(0, 1);
  EXPECT_TRUE(done);
}

TEST(DagScheduler, StaleReportIgnored) {
  Application app;
  Job job;
  job.stages.push_back(make_stage(0, 1, {}, 0));
  app.jobs.push_back(job);
  DagHarness h;
  h.dag.run(app, nullptr);
  h.dag.on_partition_success(99, 0);  // unknown stage: no crash
  EXPECT_FALSE(h.dag.finished());
}

TEST(DagScheduler, RejectsConcurrentRun) {
  Application app;
  Job job;
  job.stages.push_back(make_stage(0, 1, {}, 0));
  app.jobs.push_back(job);
  DagHarness h;
  h.dag.run(app, nullptr);
  EXPECT_THROW(h.dag.run(app, nullptr), std::logic_error);
}

}  // namespace
}  // namespace rupam
