// End-to-end properties across the full stack: determinism, conservation
// of tasks, and the paper's headline orderings.
#include <gtest/gtest.h>

#include "metrics/experiment.hpp"

namespace rupam {
namespace {

class EveryWorkloadE2E : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryWorkloadE2E, BothSchedulersCompleteEveryPartition) {
  const WorkloadPreset& preset = workload_preset(GetParam());
  for (auto kind : {SchedulerKind::kSpark, SchedulerKind::kRupam}) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    Simulation sim(cfg);
    // Shrunk inputs keep the suite fast while touching every code path.
    WorkloadParams params;
    params.input_gb = preset.input_gb / 8.0;
    params.iterations = std::min(preset.iterations, 2);
    params.seed = 5;
    params.placement_weights = hdfs_placement_weights(sim.cluster());
    Application app = preset.factory(sim.cluster().node_ids(), params);
    SimTime makespan = sim.run(app);
    EXPECT_GT(makespan, 0.0) << preset.name;
    // Every partition finished exactly once as a winner.
    std::set<std::pair<StageId, int>> done;
    for (const auto& m : sim.scheduler().completed()) {
      EXPECT_TRUE(done.emplace(m.stage, m.partition).second)
          << "duplicate winner for stage " << m.stage << " partition " << m.partition;
    }
    EXPECT_EQ(done.size(), app.total_tasks()) << preset.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Table3, EveryWorkloadE2E,
                         ::testing::Values("LR", "TeraSort", "SQL", "PR", "TC", "GM",
                                           "KMeans"));

TEST(E2E, DeterministicGivenSeed) {
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.repetitions = 1;
  cfg.iterations_override = 1;
  RunRecord a = run_workload_once(workload_preset("PR"), cfg, 9);
  RunRecord b = run_workload_once(workload_preset("PR"), cfg, 9);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.locality, b.locality);
  EXPECT_EQ(a.oom_kills, b.oom_kills);
}

TEST(E2E, DifferentSeedsProduceDifferentRuns) {
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.repetitions = 1;
  cfg.iterations_override = 1;
  RunRecord a = run_workload_once(workload_preset("PR"), cfg, 1);
  RunRecord b = run_workload_once(workload_preset("PR"), cfg, 2);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(E2E, RupamBeatsSparkOnPageRank) {
  // The paper's strongest result: PR under default Spark suffers OOM kills
  // and worker losses; RUPAM avoids them and wins big (Fig 5).
  ExperimentConfig spark_cfg;
  spark_cfg.scheduler = SchedulerKind::kSpark;
  spark_cfg.repetitions = 2;
  ExperimentConfig rupam_cfg = spark_cfg;
  rupam_cfg.scheduler = SchedulerKind::kRupam;
  ExperimentResult spark = run_experiment(workload_preset("PR"), spark_cfg);
  ExperimentResult rupam = run_experiment(workload_preset("PR"), rupam_cfg);
  EXPECT_GT(spark.mean_makespan(), 1.5 * rupam.mean_makespan());
  std::size_t spark_failures = 0, rupam_failures = 0;
  for (const auto& r : spark.runs) spark_failures += r.failed_attempts;
  for (const auto& r : rupam.runs) rupam_failures += r.failed_attempts;
  EXPECT_GT(spark_failures, rupam_failures);
}

TEST(E2E, GramianIsRoughlyNeutral) {
  // One-pass workload: nothing for DB_task_char to learn; the paper
  // reports only +1.4% for GM.
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.repetitions = 2;
  ExperimentResult spark = run_experiment(workload_preset("GM"), cfg);
  cfg.scheduler = SchedulerKind::kRupam;
  ExperimentResult rupam = run_experiment(workload_preset("GM"), cfg);
  double speedup = spark.mean_makespan() / rupam.mean_makespan();
  EXPECT_GT(speedup, 0.85);
  EXPECT_LT(speedup, 1.35);
}

TEST(E2E, RupamNeverLosesBadly) {
  // "Regardless of iterations, RUPAM is able to match or outperform the
  // default Spark scheduler" — allow a small tolerance for one-pass noise.
  for (const char* name : {"LR", "TeraSort", "PR", "TC"}) {
    ExperimentConfig cfg;
    cfg.repetitions = 1;
    cfg.scheduler = SchedulerKind::kSpark;
    ExperimentResult spark = run_experiment(workload_preset(name), cfg);
    cfg.scheduler = SchedulerKind::kRupam;
    ExperimentResult rupam = run_experiment(workload_preset(name), cfg);
    EXPECT_GT(spark.mean_makespan() / rupam.mean_makespan(), 0.95) << name;
  }
}

TEST(E2E, LocalityShapeMatchesTable5) {
  // Spark keeps more PROCESS_LOCAL tasks; RUPAM trades locality for
  // matching resources (more ANY). RACK_LOCAL never occurs.
  ExperimentConfig cfg;
  cfg.repetitions = 1;
  cfg.scheduler = SchedulerKind::kSpark;
  RunRecord spark = run_workload_once(workload_preset("LR"), cfg, 4);
  cfg.scheduler = SchedulerKind::kRupam;
  RunRecord rupam = run_workload_once(workload_preset("LR"), cfg, 4);
  // Shape with 10% slack (single-seed counts are noisy): Spark preserves
  // at least as much locality as RUPAM, which trades it away.
  EXPECT_GE(static_cast<double>(spark.locality[0] + spark.locality[1]),
            0.9 * static_cast<double>(rupam.locality[0] + rupam.locality[1]));
  EXPECT_GE(static_cast<double>(rupam.locality[3]),
            0.9 * static_cast<double>(spark.locality[3]));
  EXPECT_EQ(spark.locality[2], 0u);  // RACK
  EXPECT_EQ(rupam.locality[2], 0u);
}

TEST(E2E, MemoryUsageHigherUnderRupam) {
  // Fig 8(b): dynamic executor sizing raises average memory usage.
  ExperimentConfig cfg;
  cfg.repetitions = 1;
  cfg.sample_utilization = true;
  cfg.scheduler = SchedulerKind::kSpark;
  RunRecord spark = run_workload_once(workload_preset("PR"), cfg, 3);
  cfg.scheduler = SchedulerKind::kRupam;
  RunRecord rupam = run_workload_once(workload_preset("PR"), cfg, 3);
  EXPECT_GT(rupam.avg_memory_used, spark.avg_memory_used);
}

TEST(Experiment, RunnerProducesRequestedRepetitions) {
  ExperimentConfig cfg;
  cfg.repetitions = 3;
  cfg.iterations_override = 1;
  ExperimentResult r = run_experiment(workload_preset("GM"), cfg);
  EXPECT_EQ(r.runs.size(), 3u);
  EXPECT_GT(r.mean_makespan(), 0.0);
  EXPECT_GE(r.ci95_makespan(), 0.0);
  EXPECT_GT(r.median_run().makespan, 0.0);
}

TEST(Experiment, RejectsZeroRepetitions) {
  ExperimentConfig cfg;
  cfg.repetitions = 0;
  EXPECT_THROW(run_experiment(workload_preset("GM"), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace rupam
