#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/heartbeat.hpp"
#include "cluster/presets.hpp"

namespace rupam {
namespace {

TEST(NodeSpec, HydraClassesMatchTable2) {
  NodeSpec thor = thor_spec();
  EXPECT_EQ(thor.cores, 8);
  EXPECT_DOUBLE_EQ(thor.cpu_ghz, 3.2);
  EXPECT_DOUBLE_EQ(to_gib(thor.memory), 16.0);
  EXPECT_TRUE(thor.has_ssd);
  EXPECT_EQ(thor.gpus, 0);

  NodeSpec hulk = hulk_spec();
  EXPECT_EQ(hulk.cores, 32);
  EXPECT_DOUBLE_EQ(to_gib(hulk.memory), 64.0);
  EXPECT_DOUBLE_EQ(hulk.net_bandwidth, gbit_per_s(10.0));
  EXPECT_FALSE(hulk.has_ssd);

  NodeSpec stack = stack_spec();
  EXPECT_EQ(stack.cores, 16);
  EXPECT_DOUBLE_EQ(to_gib(stack.memory), 48.0);
  EXPECT_EQ(stack.gpus, 1);
}

TEST(NodeSpec, ThorIsFastestPerCore) {
  EXPECT_GT(thor_spec().cpu_perf, hulk_spec().cpu_perf);
  EXPECT_GE(hulk_spec().cpu_perf, stack_spec().cpu_perf);  // Table IV order
}

TEST(Cluster, HydraLayout) {
  Simulator sim;
  Cluster cluster(sim);
  auto ids = build_hydra(cluster);
  EXPECT_EQ(cluster.size(), 12u);
  EXPECT_EQ(ids.size(), 12u);
  EXPECT_EQ(cluster.nodes_of_class("thor").size(), 6u);
  EXPECT_EQ(cluster.nodes_of_class("hulk").size(), 4u);
  EXPECT_EQ(cluster.nodes_of_class("stack").size(), 2u);
  EXPECT_DOUBLE_EQ(to_gib(cluster.min_node_memory()), 16.0);
}

TEST(Cluster, SwitchCapsNominal10GbE) {
  Simulator sim;
  Cluster cluster(sim, gbit_per_s(1.0));
  build_hydra(cluster);
  // hulk's nominal 10 GbE is leveled by the 1 GbE fabric (Table IV).
  for (NodeId id : cluster.nodes_of_class("hulk")) {
    EXPECT_DOUBLE_EQ(cluster.node(id).net().capacity(), gbit_per_s(1.0));
  }
}

TEST(Cluster, MotivationPairAsymmetry) {
  Simulator sim;
  Cluster cluster(sim, gbit_per_s(10.0));
  auto ids = build_motivation_pair(cluster);
  ASSERT_EQ(ids.size(), 2u);
  const NodeSpec& n1 = cluster.node(ids[0]).spec();
  const NodeSpec& n2 = cluster.node(ids[1]).spec();
  EXPECT_LT(n1.cpu_ghz, n2.cpu_ghz);
  EXPECT_LT(n1.net_bandwidth, n2.net_bandwidth);
  EXPECT_EQ(n1.cores, n2.cores);
  EXPECT_EQ(n1.memory, n2.memory);
}

TEST(Cluster, BadNodeIdThrows) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(thor_spec());
  EXPECT_THROW(cluster.node(-1), std::out_of_range);
  EXPECT_THROW(cluster.node(1), std::out_of_range);
}

TEST(NodeMetrics, SnapshotReflectsState) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(stack_spec());
  Node& node = cluster.node(id);
  NodeMetrics idle = node.metrics();
  EXPECT_EQ(idle.node, id);
  EXPECT_DOUBLE_EQ(idle.cpu_util, 0.0);
  EXPECT_EQ(idle.gpus_idle, 1);

  node.cpu().start(1000.0, 1.0, nullptr);
  node.gpus().try_acquire();
  NodeMetrics busy = node.metrics();
  EXPECT_GT(busy.cpu_util, 0.0);
  EXPECT_EQ(busy.gpus_idle, 0);
}

TEST(NodeMetrics, FreeMemoryTracksReporters) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  Node& node = cluster.node(id);
  Bytes before = node.free_memory();
  Bytes used = 4.0 * kGiB;
  node.add_memory_reporter([used] { return used; });
  EXPECT_DOUBLE_EQ(node.free_memory(), before - used);
}

TEST(NodeMetrics, CapabilityOrdering) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId thor = cluster.add_node(thor_spec());
  NodeId hulk = cluster.add_node(hulk_spec());
  NodeMetrics mt = cluster.node(thor).metrics();
  NodeMetrics mh = cluster.node(hulk).metrics();
  // CPU queue ranks per-core speed: thor first (the paper's cpufreq).
  EXPECT_GT(mt.capability(ResourceKind::kCpu), mh.capability(ResourceKind::kCpu));
  // Memory queue ranks free memory: hulk first.
  EXPECT_GT(mh.capability(ResourceKind::kMemory), mt.capability(ResourceKind::kMemory));
  // Disk queue ranks SSDs first.
  EXPECT_GT(mt.capability(ResourceKind::kDisk), mh.capability(ResourceKind::kDisk));
}

TEST(Heartbeat, DeliversPeriodicallyFromAllNodes) {
  Simulator sim;
  Cluster cluster(sim);
  build_hydra(cluster);
  HeartbeatService hb(cluster, 1.0);
  std::vector<int> beats(cluster.size(), 0);
  hb.subscribe([&](const NodeMetrics& m) { beats[static_cast<std::size_t>(m.node)]++; });
  hb.start();
  sim.run(10.0);
  // Node 0's phase is 0, so it beats at t=0,1,...,10 (11 beats); the rest
  // land strictly inside the window (10 beats).
  for (int b : beats) {
    EXPECT_GE(b, 10);
    EXPECT_LE(b, 11);
  }
  std::vector<int> frozen = beats;
  hb.stop();
  sim.run(20.0);
  EXPECT_EQ(beats, frozen);  // no beats after stop
}

TEST(Heartbeat, StaggeredNotSimultaneous) {
  Simulator sim;
  Cluster cluster(sim);
  build_hydra(cluster);
  HeartbeatService hb(cluster, 1.0);
  std::vector<SimTime> times;
  hb.subscribe([&](const NodeMetrics&) { times.push_back(sim.now()); });
  hb.start();
  sim.run(0.999);
  ASSERT_EQ(times.size(), 12u);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GT(times[i], times[i - 1]);
}

TEST(Heartbeat, RejectsBadPeriod) {
  Simulator sim;
  Cluster cluster(sim);
  EXPECT_THROW(HeartbeatService(cluster, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace rupam
