#include <gtest/gtest.h>

#include "cluster/gpu_pool.hpp"
#include "cluster/memory_pool.hpp"
#include "common/units.hpp"

namespace rupam {
namespace {

TEST(MemoryPool, ReserveAndRelease) {
  MemoryPool pool(100.0);
  EXPECT_TRUE(pool.try_reserve(60.0));
  EXPECT_DOUBLE_EQ(pool.used(), 60.0);
  EXPECT_DOUBLE_EQ(pool.free(), 40.0);
  EXPECT_FALSE(pool.try_reserve(50.0));
  EXPECT_DOUBLE_EQ(pool.used(), 60.0);  // failed reserve takes nothing
  pool.release(60.0);
  EXPECT_DOUBLE_EQ(pool.used(), 0.0);
}

TEST(MemoryPool, ForceReserveCanOvercommit) {
  MemoryPool pool(100.0);
  pool.force_reserve(150.0);
  EXPECT_TRUE(pool.overcommitted());
  EXPECT_DOUBLE_EQ(pool.occupancy(), 1.5);
}

TEST(MemoryPool, ReleaseClampsAtZero) {
  MemoryPool pool(100.0);
  pool.force_reserve(10.0);
  pool.release(50.0);
  EXPECT_DOUBLE_EQ(pool.used(), 0.0);
}

TEST(MemoryPool, RejectsNegative) {
  EXPECT_THROW(MemoryPool(-1.0), std::invalid_argument);
  MemoryPool pool(10.0);
  EXPECT_THROW(pool.try_reserve(-1.0), std::invalid_argument);
  EXPECT_THROW(pool.force_reserve(-1.0), std::invalid_argument);
  EXPECT_THROW(pool.release(-1.0), std::invalid_argument);
}

TEST(GpuPool, AcquireRelease) {
  GpuPool gpus(2);
  EXPECT_EQ(gpus.idle(), 2);
  EXPECT_TRUE(gpus.try_acquire());
  EXPECT_TRUE(gpus.try_acquire());
  EXPECT_FALSE(gpus.try_acquire());
  EXPECT_EQ(gpus.busy(), 2);
  gpus.release();
  EXPECT_EQ(gpus.idle(), 1);
  EXPECT_TRUE(gpus.try_acquire());
}

TEST(GpuPool, ZeroDevices) {
  GpuPool gpus(0);
  EXPECT_FALSE(gpus.try_acquire());
}

TEST(GpuPool, ReleaseWithoutAcquireThrows) {
  GpuPool gpus(1);
  EXPECT_THROW(gpus.release(), std::logic_error);
}

TEST(GpuPool, RejectsNegativeCount) { EXPECT_THROW(GpuPool(-1), std::invalid_argument); }

}  // namespace
}  // namespace rupam
