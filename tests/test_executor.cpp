// Executor / TaskExecution behaviour: phase timing, metrics breakdown,
// memory semantics (managed spill vs unmanaged OOM vs executor loss),
// caching, GPU usage, and kill paths.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/presets.hpp"
#include "exec/executor.hpp"

namespace rupam {
namespace {

struct Harness {
  Simulator sim;
  Cluster cluster{sim};
  NodeId node_id;
  std::unique_ptr<Executor> exec;
  std::vector<TaskMetrics> finished;
  std::vector<std::string> failures;

  explicit Harness(NodeSpec spec = thor_spec(), ExecutorConfig cfg = {}) {
    spec.name = "n0";
    node_id = cluster.add_node(spec);
    exec = std::make_unique<Executor>(sim, cluster.node(node_id), 0, cfg, Rng(1));
  }

  std::shared_ptr<TaskExecution> launch(TaskSpec spec, LaunchOptions opts = {}) {
    return exec->launch(
        spec, opts, [this](const TaskMetrics& m) { finished.push_back(m); },
        [this](const TaskSpec&, AttemptId, const std::string& reason) {
          failures.push_back(reason);
        });
  }

  static TaskSpec simple_task(TaskId id = 1) {
    TaskSpec t;
    t.id = id;
    t.stage = 0;
    t.stage_name = "s";
    t.partition = static_cast<int>(id);
    t.compute = 7.0;
    t.peak_memory = 256.0 * kMiB;
    t.serialization_fraction = 0.1;
    return t;
  }
};

TEST(Executor, ComputeOnlyTaskTiming) {
  Harness h;
  TaskSpec t = Harness::simple_task();
  h.launch(t);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);
  const TaskMetrics& m = h.finished[0];
  // thor core_speed = 3.5 -> 7 ref-core-seconds take 2s (plus GC).
  EXPECT_NEAR(m.compute_time, 2.0, 0.5);
  EXPECT_GT(m.gc_time, 0.0);
  EXPECT_NEAR(m.serialization_time, 0.1 * m.compute_time, 1e-9);
  EXPECT_FALSE(m.failed);
}

TEST(Executor, LocalInputReadUsesDisk) {
  Harness h;
  TaskSpec t = Harness::simple_task();
  t.compute = 0.0;
  t.input_bytes = 510.0 * kMiB;  // thor SSD reads 510 MiB/s -> 1s
  t.preferred_nodes = {h.node_id};
  h.launch(t);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_NEAR(h.finished[0].input_read_time, 1.0, 0.01);
}

TEST(Executor, RemoteInputReadUsesNetwork) {
  Harness h;
  TaskSpec t = Harness::simple_task();
  t.compute = 0.0;
  t.input_bytes = gbit_per_s(1.0);  // 1 second at full NIC
  // no preferred nodes -> remote fetch
  h.launch(t);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_NEAR(h.finished[0].input_read_time, 1.0, 0.01);
}

TEST(Executor, CachedInputIsFast) {
  Harness h;
  h.exec->cache().put("block_1", 64.0 * kMiB);
  TaskSpec t = Harness::simple_task();
  t.compute = 0.0;
  t.input_bytes = 64.0 * kMiB;
  t.input_cache_key = "block_1";
  h.launch(t);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_LT(h.finished[0].input_read_time, 0.05);  // memory-speed read
}

TEST(Executor, CacheMissRecachesReadThrough) {
  Harness h;
  TaskSpec t = Harness::simple_task();
  t.input_bytes = 64.0 * kMiB;
  t.input_cache_key = "block_2";
  h.launch(t);
  h.sim.run();
  EXPECT_TRUE(h.exec->cache().contains("block_2"));
}

TEST(Executor, ShuffleSplitsDiskAndNet) {
  Harness h;
  TaskSpec t = Harness::simple_task();
  t.compute = 0.0;
  t.shuffle_read_bytes = 100.0 * kMiB;
  t.shuffle_remote_fraction = 0.75;
  h.launch(t);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);
  const TaskMetrics& m = h.finished[0];
  EXPECT_GT(m.shuffle_net_time, 0.0);
  EXPECT_GT(m.shuffle_disk_time, 0.0);
  EXPECT_NEAR(m.shuffle_read_time, m.shuffle_net_time + m.shuffle_disk_time, 1e-9);
}

TEST(Executor, ShuffleWriteAndOutput) {
  Harness h;
  TaskSpec t = Harness::simple_task();
  t.compute = 0.0;
  t.shuffle_write_bytes = 460.0 * kMiB;  // thor SSD write 460 MiB/s -> 1s
  t.output_bytes = gbit_per_s(1.0) / 2;  // 0.5s on the NIC
  t.is_shuffle_map = false;
  h.launch(t);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_NEAR(h.finished[0].shuffle_write_time, 1.0, 0.02);
  EXPECT_NEAR(h.finished[0].output_time, 0.5, 0.02);
}

TEST(Executor, CachesOutputBlock) {
  Harness h;
  TaskSpec t = Harness::simple_task();
  t.cache_output_key = "rdd_5_0";
  t.cache_output_bytes = 32.0 * kMiB;
  h.launch(t);
  h.sim.run();
  EXPECT_TRUE(h.exec->cache().contains("rdd_5_0"));
}

TEST(Executor, SlotsTrackRunningTasks) {
  ExecutorConfig cfg;
  cfg.task_slots = 4;
  Harness h(thor_spec(), cfg);
  EXPECT_EQ(h.exec->free_slots(), 4);
  for (TaskId i = 0; i < 3; ++i) h.launch(Harness::simple_task(i));
  EXPECT_EQ(h.exec->free_slots(), 1);
  EXPECT_EQ(h.exec->running_tasks(), 3);
  h.sim.run();
  EXPECT_EQ(h.exec->free_slots(), 4);
}

TEST(Executor, ManagedShortfallSpillsInsteadOfFailing) {
  ExecutorConfig cfg;
  cfg.heap = 1.0 * kGiB;
  Harness h(thor_spec(), cfg);
  TaskSpec t = Harness::simple_task();
  t.peak_memory = 4.0 * kGiB;  // far beyond the heap
  t.compute = 1.0;
  h.launch(t);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);      // completed
  EXPECT_TRUE(h.failures.empty());       // no OOM for managed memory
  EXPECT_GT(h.finished[0].shuffle_write_time, 1.0);  // spill wrote to disk
}

TEST(Executor, UnmanagedOverflowOomKillsNewest) {
  ExecutorConfig cfg;
  cfg.heap = 2.0 * kGiB;
  cfg.oom_grace = 0.5;
  Harness h(thor_spec(), cfg);
  for (TaskId i = 0; i < 3; ++i) {
    TaskSpec t = Harness::simple_task(i);
    t.unmanaged_memory = 0.8 * kGiB;  // 2.4 GiB total: over heap, under kill
    t.peak_memory = 0.0;
    t.compute = 200.0;  // long enough to be running when pressure resolves
    h.launch(t);
  }
  h.sim.run(5.0);
  EXPECT_EQ(h.exec->oom_kills(), 1u);  // one kill brings 1.6 GiB under 2 GiB
  ASSERT_GE(h.failures.size(), 1u);
  EXPECT_NE(h.failures[0].find("OutOfMemory"), std::string::npos);
  EXPECT_EQ(h.exec->running_tasks(), 2);
}

TEST(Executor, ExtremeOverflowKillsExecutor) {
  ExecutorConfig cfg;
  cfg.heap = 2.0 * kGiB;
  cfg.oom_grace = 0.5;
  cfg.restart_delay = 5.0;
  Harness h(thor_spec(), cfg);
  bool lost = false;
  h.exec->set_lost_handler([&](ExecutorId) { lost = true; });
  bool ready_again = false;
  h.exec->set_ready_handler([&](ExecutorId) { ready_again = true; });
  for (TaskId i = 0; i < 4; ++i) {
    TaskSpec t = Harness::simple_task(i);
    t.unmanaged_memory = 1.0 * kGiB;  // 4 GiB total > 2 GiB * 1.25
    t.peak_memory = 0.0;
    t.compute = 200.0;
    h.launch(t);
  }
  h.sim.run(2.0);
  EXPECT_TRUE(lost);
  EXPECT_EQ(h.exec->executor_losses(), 1u);
  EXPECT_FALSE(h.exec->alive());
  EXPECT_EQ(h.exec->launch(Harness::simple_task(9), {}, nullptr, nullptr), nullptr);
  EXPECT_EQ(h.failures.size(), 4u);  // all running tasks reported lost
  h.sim.run(10.0);
  EXPECT_TRUE(h.exec->alive());
  EXPECT_TRUE(ready_again);
}

TEST(Executor, KillTaskSilently) {
  Harness h;
  TaskSpec t = Harness::simple_task(7);
  t.compute = 100.0;
  h.launch(t);
  h.sim.run(1.0);
  EXPECT_TRUE(h.exec->kill_task(7, "superseded", /*notify=*/false));
  EXPECT_EQ(h.exec->running_tasks(), 0);
  h.sim.run();
  EXPECT_TRUE(h.finished.empty());
  EXPECT_TRUE(h.failures.empty());  // silent kill
  EXPECT_FALSE(h.exec->kill_task(7, "again", false));
}

TEST(Executor, KillReleasesMemory) {
  Harness h;
  TaskSpec t = Harness::simple_task(7);
  t.compute = 100.0;
  t.peak_memory = 1.0 * kGiB;
  h.launch(t);
  h.sim.run(1.0);
  EXPECT_GT(h.exec->heap_used(), 0.5 * kGiB);
  h.exec->kill_task(7, "x", false);
  EXPECT_LT(h.exec->heap_used(), 0.5 * kGiB);
}

TEST(Executor, GpuTaskUsesDeviceAndReleases) {
  Harness h(stack_spec());
  TaskSpec t = Harness::simple_task();
  t.compute = 50.0;
  t.gpu_accelerable = true;
  t.gpu_speedup = 10.0;
  LaunchOptions opts;
  opts.use_gpu = true;
  h.launch(t, opts);
  EXPECT_EQ(h.cluster.node(h.node_id).gpus().idle(), 0);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_TRUE(h.finished[0].used_gpu);
  // 50 ref-core-sec at 10x -> ~5s, far below stack's CPU (50s).
  EXPECT_LT(h.finished[0].run_time(), 10.0);
  EXPECT_EQ(h.cluster.node(h.node_id).gpus().idle(), 1);
}

TEST(Executor, GpuContentionFallsBackToCpu) {
  Harness h(stack_spec());  // one device
  TaskSpec a = Harness::simple_task(1);
  a.compute = 50.0;
  a.gpu_accelerable = true;
  TaskSpec b = Harness::simple_task(2);
  b.compute = 50.0;
  b.gpu_accelerable = true;
  LaunchOptions opts;
  opts.use_gpu = true;
  h.launch(a, opts);
  h.launch(b, opts);
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 2u);
  int on_gpu = h.finished[0].used_gpu + h.finished[1].used_gpu;
  EXPECT_EQ(on_gpu, 1);  // the loser ran on the (slow) CPU
}

TEST(Executor, SchedulerDelayMeasured) {
  Harness h;
  TaskSpec t = Harness::simple_task();
  LaunchOptions opts;
  opts.submit_time = 0.0;
  h.sim.schedule_at(3.0, [&] { h.launch(t, opts); });
  h.sim.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_DOUBLE_EQ(h.finished[0].scheduler_delay, 3.0);
}

TEST(Executor, ElasticMemoryGrowsIntoFreeHeapBounded) {
  ExecutorConfig cfg;
  cfg.heap = 32.0 * kGiB;
  Harness h(hulk_spec(), cfg);
  TaskSpec t = Harness::simple_task();
  t.peak_memory = 1.0 * kGiB;
  t.elastic_memory_fraction = 0.5;
  t.compute = 50.0;
  h.launch(t);
  h.sim.run(0.5);
  // Reserved = peak + min(0.5 * headroom, 2 * peak) = 3 GiB.
  EXPECT_NEAR(h.exec->heap_used() / kGiB, 3.0, 0.01);
  h.sim.run();
}

}  // namespace
}  // namespace rupam
