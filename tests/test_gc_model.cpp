#include <gtest/gtest.h>

#include "exec/gc_model.hpp"

namespace rupam {
namespace {

TEST(GcModel, ZeroAllocationZeroCost) {
  GcModel gc;
  EXPECT_DOUBLE_EQ(gc.gc_time(0.0, 16.0 * kGiB, 0.5), 0.0);
}

TEST(GcModel, CostGrowsWithAllocation) {
  GcModel gc;
  double a = gc.gc_time(1.0 * kGiB, 16.0 * kGiB, 0.5);
  double b = gc.gc_time(2.0 * kGiB, 16.0 * kGiB, 0.5);
  EXPECT_NEAR(b, 2.0 * a, 1e-9);
}

TEST(GcModel, CostGrowsWithOccupancy) {
  GcModel gc;
  double low = gc.gc_time(1.0 * kGiB, 16.0 * kGiB, 0.1);
  double high = gc.gc_time(1.0 * kGiB, 16.0 * kGiB, 0.9);
  EXPECT_GT(high, low);
}

TEST(GcModel, FullScanTermGrowsWithHeapSize) {
  // The paper's SQL observation: bigger executors pay more per collection
  // at equal occupancy ("searching the whole JVM memory space").
  GcModel gc;
  double small = gc.gc_time(1.0 * kGiB, 14.0 * kGiB, 0.8);
  double large = gc.gc_time(1.0 * kGiB, 62.0 * kGiB, 0.8);
  EXPECT_GT(large, small);
}

TEST(GcModel, OccupancyClamped) {
  GcModel gc;
  EXPECT_DOUBLE_EQ(gc.gc_time(1.0 * kGiB, 16.0 * kGiB, -0.5),
                   gc.gc_time(1.0 * kGiB, 16.0 * kGiB, 0.0));
  EXPECT_DOUBLE_EQ(gc.gc_time(1.0 * kGiB, 16.0 * kGiB, 2.0),
                   gc.gc_time(1.0 * kGiB, 16.0 * kGiB, 1.0));
}

TEST(GcModel, BaseThroughputOnly) {
  GcModelParams p;
  p.scan_factor = 0.0;
  GcModel gc(p);
  EXPECT_NEAR(gc.gc_time(p.throughput, 16.0 * kGiB, 1.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace rupam
