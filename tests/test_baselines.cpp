// Baseline schedulers: the stage-granular heterogeneity-aware proxy and
// the oblivious FIFO lower bound.
#include <gtest/gtest.h>

#include "app/simulation.hpp"
#include "cluster/presets.hpp"
#include "sched/baselines/capability_scheduler.hpp"
#include "sched/baselines/fifo_scheduler.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

Application small_app(int tasks, double compute, Bytes shuffle_write = 0.0,
                      const std::string& name = "s0") {
  Application app;
  Job job;
  job.id = 0;
  Stage stage;
  stage.id = 0;
  stage.name = name;
  stage.tasks.stage = 0;
  stage.tasks.stage_name = name;
  for (TaskId i = 0; i < tasks; ++i) {
    TaskSpec t;
    t.id = i;
    t.stage = 0;
    t.stage_name = name;
    t.partition = static_cast<int>(i);
    t.compute = compute;
    t.shuffle_write_bytes = shuffle_write;
    t.peak_memory = 128.0 * kMiB;
    stage.tasks.tasks.push_back(t);
  }
  job.stages.push_back(std::move(stage));
  app.jobs.push_back(std::move(job));
  return app;
}

TEST(FifoScheduler, CompletesEverything) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kFifo;
  Simulation sim(cfg);
  Application app = small_app(60, 5.0);
  EXPECT_GT(sim.run(app), 0.0);
  EXPECT_EQ(sim.scheduler().completed().size(), 60u);
  EXPECT_EQ(sim.scheduler().name(), "FIFO");
}

TEST(CapabilityScheduler, CompletesEverything) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kStageAware;
  Simulation sim(cfg);
  Application app = small_app(60, 5.0);
  EXPECT_GT(sim.run(app), 0.0);
  EXPECT_EQ(sim.scheduler().completed().size(), 60u);
  EXPECT_EQ(sim.scheduler().name(), "StageAware");
}

TEST(CapabilityScheduler, DefaultsToCpuAssumption) {
  SchedulerEnv env;
  Simulator sim;
  Cluster cluster(sim);
  build_hydra(cluster);
  std::vector<std::unique_ptr<Executor>> executors;
  Rng rng(1);
  for (NodeId id : cluster.node_ids()) {
    ExecutorConfig ec;
    executors.push_back(std::make_unique<Executor>(sim, cluster.node(id), id, ec, rng.split()));
  }
  env.sim = &sim;
  env.cluster = &cluster;
  for (auto& e : executors) env.executors.push_back(e.get());
  CapabilityScheduler sched(env);
  EXPECT_EQ(sched.stage_bottleneck("never-seen"), ResourceKind::kCpu);
}

TEST(CapabilityScheduler, PrefersFastCpuNodesForComputeStage) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kStageAware;
  Simulation sim(cfg);
  // Few compute-only tasks: the per-core capability ranking should put
  // them on thor (ids 0..5) first.
  Application app = small_app(8, 20.0);
  sim.run(app);
  int on_thor = 0;
  for (const auto& m : sim.scheduler().completed()) {
    on_thor += sim.cluster().node(m.node).spec().node_class == "thor";
  }
  EXPECT_GE(on_thor, 6);
}

TEST(Baselines, LadderOrderingOnSkewedIterativeWork) {
  // On LR (heavy intra-stage skew, iterative) the expected ladder is
  // FIFO >= Spark and StageAware/RUPAM both complete; RUPAM beats FIFO.
  std::map<SchedulerKind, double> makespan;
  for (auto kind : {SchedulerKind::kFifo, SchedulerKind::kSpark, SchedulerKind::kStageAware,
                    SchedulerKind::kRupam}) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    Simulation sim(cfg);
    Application app = build_workload(workload_preset("LR"), sim.cluster().node_ids(), 2, 3,
                                     hdfs_placement_weights(sim.cluster()));
    makespan[kind] = sim.run(app);
    EXPECT_EQ(sim.scheduler().completed().size(), app.total_tasks())
        << to_string(kind);
  }
  EXPECT_LT(makespan[SchedulerKind::kRupam], makespan[SchedulerKind::kFifo]);
}

}  // namespace
}  // namespace rupam
