#include <gtest/gtest.h>

#include <sstream>

#include "app/cli.hpp"

namespace rupam {
namespace {

std::optional<CliOptions> parse(std::initializer_list<const char*> args) {
  std::ostringstream err;
  return parse_cli(std::vector<std::string>(args.begin(), args.end()), err);
}

TEST(Cli, Defaults) {
  auto opts = parse({});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->workload, "PR");
  EXPECT_EQ(opts->scheduler, SchedulerKind::kRupam);
  EXPECT_EQ(opts->repetitions, 1);
}

TEST(Cli, ParsesEverything) {
  auto opts = parse({"--workload", "LR", "--scheduler", "spark", "--iterations", "7",
                     "--repetitions", "3", "--seed", "42", "--sample", "--trace-csv",
                     "/tmp/x.csv", "--trace-chrome", "/tmp/x.json"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->workload, "LR");
  EXPECT_EQ(opts->scheduler, SchedulerKind::kSpark);
  EXPECT_EQ(opts->iterations, 7);
  EXPECT_EQ(opts->repetitions, 3);
  EXPECT_EQ(opts->seed, 42u);
  EXPECT_TRUE(opts->sample_utilization);
  EXPECT_EQ(opts->trace_csv, "/tmp/x.csv");
  EXPECT_EQ(opts->trace_chrome, "/tmp/x.json");
}

TEST(Cli, SchedulerNames) {
  EXPECT_EQ(scheduler_from_name("spark"), SchedulerKind::kSpark);
  EXPECT_EQ(scheduler_from_name("rupam"), SchedulerKind::kRupam);
  EXPECT_EQ(scheduler_from_name("stageaware"), SchedulerKind::kStageAware);
  EXPECT_EQ(scheduler_from_name("fifo"), SchedulerKind::kFifo);
  EXPECT_FALSE(scheduler_from_name("yarn").has_value());
}

TEST(Cli, RejectsBadInput) {
  EXPECT_FALSE(parse({"--scheduler", "bogus"}).has_value());
  EXPECT_FALSE(parse({"--workload"}).has_value());       // missing value
  EXPECT_FALSE(parse({"--repetitions", "0"}).has_value());
  EXPECT_FALSE(parse({"--iterations", "-1"}).has_value());
  EXPECT_FALSE(parse({"--what"}).has_value());
}

TEST(Cli, HelpAndList) {
  std::ostringstream out, err;
  CliOptions help;
  help.help = true;
  EXPECT_EQ(run_cli(help, out, err), 0);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);

  std::ostringstream out2;
  CliOptions list;
  list.list_workloads = true;
  EXPECT_EQ(run_cli(list, out2, err), 0);
  EXPECT_NE(out2.str().find("TeraSort"), std::string::npos);
  EXPECT_NE(out2.str().find("KMeans"), std::string::npos);
}

TEST(Cli, UnknownWorkloadFails) {
  std::ostringstream out, err;
  CliOptions opts;
  opts.workload = "NotReal";
  EXPECT_EQ(run_cli(opts, out, err), 2);
  EXPECT_FALSE(err.str().empty());
}

TEST(Cli, RunsSmallSimulation) {
  std::ostringstream out, err;
  CliOptions opts;
  opts.workload = "GM";
  opts.scheduler = SchedulerKind::kSpark;
  EXPECT_EQ(run_cli(opts, out, err), 0);
  EXPECT_NE(out.str().find("makespan:"), std::string::npos);
  EXPECT_NE(out.str().find("Gramian"), std::string::npos);
}

}  // namespace
}  // namespace rupam
