#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "app/cli.hpp"

namespace rupam {
namespace {

std::optional<CliOptions> parse(std::initializer_list<const char*> args) {
  std::ostringstream err;
  return parse_cli(std::vector<std::string>(args.begin(), args.end()), err);
}

TEST(Cli, Defaults) {
  auto opts = parse({});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->workload, "PR");
  EXPECT_EQ(opts->scheduler, SchedulerKind::kRupam);
  EXPECT_EQ(opts->repetitions, 1);
}

TEST(Cli, ParsesEverything) {
  auto opts = parse({"--workload", "LR", "--scheduler", "spark", "--iterations", "7",
                     "--repetitions", "3", "--seed", "42", "--sample", "--trace-csv",
                     "/tmp/x.csv", "--trace-chrome", "/tmp/x.json"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->workload, "LR");
  EXPECT_EQ(opts->scheduler, SchedulerKind::kSpark);
  EXPECT_EQ(opts->iterations, 7);
  EXPECT_EQ(opts->repetitions, 3);
  EXPECT_EQ(opts->seed, 42u);
  EXPECT_TRUE(opts->sample_utilization);
  EXPECT_EQ(opts->trace_csv, "/tmp/x.csv");
  EXPECT_EQ(opts->trace_chrome, "/tmp/x.json");
}

TEST(Cli, SchedulerNames) {
  EXPECT_EQ(scheduler_from_name("spark"), SchedulerKind::kSpark);
  EXPECT_EQ(scheduler_from_name("rupam"), SchedulerKind::kRupam);
  EXPECT_EQ(scheduler_from_name("stageaware"), SchedulerKind::kStageAware);
  EXPECT_EQ(scheduler_from_name("fifo"), SchedulerKind::kFifo);
  EXPECT_EQ(scheduler_from_name("heft"), SchedulerKind::kHeft);
  EXPECT_FALSE(scheduler_from_name("yarn").has_value());
}

TEST(Cli, ParsesReplayFlags) {
  auto opts = parse({"--checkpoint-at", "120.5", "--checkpoint-out", "/tmp/cp.json",
                     "--restore", "/tmp/old.json", "--branch", "scheduler=heft",
                     "--branch-out", "/tmp/br.json", "--whatif", "/tmp/diag.json",
                     "--whatif-out", "/tmp/wi.json", "--report-out", "/tmp/run.json"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_DOUBLE_EQ(opts->checkpoint_at, 120.5);
  EXPECT_EQ(opts->checkpoint_out, "/tmp/cp.json");
  EXPECT_EQ(opts->restore, "/tmp/old.json");
  EXPECT_EQ(opts->branch, "scheduler=heft");
  EXPECT_EQ(opts->branch_out, "/tmp/br.json");
  EXPECT_EQ(opts->whatif, "/tmp/diag.json");
  EXPECT_EQ(opts->whatif_out, "/tmp/wi.json");
  EXPECT_EQ(opts->report_out, "/tmp/run.json");
}

// Usage-drift guard: every CliOptions field maps to a flag that must
// appear in cli_usage(), and every --token the usage text mentions must be
// a flag this table knows. Adding a CliOptions field without updating the
// usage text (or documenting a flag that no longer exists) fails here.
TEST(Cli, UsageTextCoversEveryFlag) {
  // field → flag, one row per CliOptions member (shared flags repeat).
  const std::vector<std::pair<const char*, const char*>> field_flags = {
      {"workload", "--workload"},
      {"workload_explicit", "--workload"},
      {"scheduler", "--scheduler"},
      {"fleet", "--fleet"},
      {"iterations", "--iterations"},
      {"repetitions", "--repetitions"},
      {"seed", "--seed"},
      {"sample_utilization", "--sample"},
      {"trace_csv", "--trace-csv"},
      {"trace_chrome", "--trace-chrome"},
      {"trace_perfetto", "--trace-perfetto"},
      {"metrics_out", "--metrics-out"},
      {"explain_out", "--explain"},
      {"analyze_out", "--analyze"},
      {"analyze_k", "--analyze-k"},
      {"compare_base", "--compare"},
      {"compare_test", "--compare"},
      {"compare_out", "--compare-out"},
      {"compare_strict", "--compare-strict"},
      {"compare_tolerance", "--compare-tolerance"},
      {"faults", "--faults"},
      {"chaos_seed", "--chaos"},
      {"sweep", "--sweep"},
      {"sweep_threads", "--sweep-threads"},
      {"sweep_out", "--sweep-out"},
      {"arrivals", "--arrivals"},
      {"tenants", "--tenants"},
      {"pool_policy", "--pool-policy"},
      {"duration", "--duration"},
      {"diurnal", "--diurnal"},
      {"diurnal_period", "--diurnal-period"},
      {"autoscale", "--autoscale"},
      {"spot_plan", "--spot-plan"},
      {"preempt", "--preempt"},
      {"config", "--config"},
      {"fleet_spec", "--config"},  // embedded fleets arrive via --config
      {"checkpoint_at", "--checkpoint-at"},
      {"checkpoint_out", "--checkpoint-out"},
      {"restore", "--restore"},
      {"branch", "--branch"},
      {"branch_out", "--branch-out"},
      {"whatif", "--whatif"},
      {"whatif_out", "--whatif-out"},
      {"report_out", "--report-out"},
      {"list_workloads", "--list"},
      {"help", "--help"},
  };
  const std::string usage = cli_usage();
  std::set<std::string> known;
  for (const auto& [field, flag] : field_flags) {
    EXPECT_NE(usage.find(flag), std::string::npos)
        << "CliOptions field '" << field << "': flag " << flag << " missing from cli_usage()";
    known.insert(flag);
  }
  // Reverse direction: every flag token the usage text documents is one
  // the table (and therefore CliOptions) knows about.
  for (std::size_t pos = usage.find("--"); pos != std::string::npos;
       pos = usage.find("--", pos + 1)) {
    std::size_t end = pos;
    while (end < usage.size() &&
           (std::isalnum(static_cast<unsigned char>(usage[end])) || usage[end] == '-')) {
      ++end;
    }
    std::string token = usage.substr(pos, end - pos);
    if (token == "--") continue;  // prose dashes
    EXPECT_TRUE(known.count(token) > 0) << "cli_usage() documents unknown flag " << token;
    pos = end - 1;
  }
}

TEST(Cli, RejectsBadInput) {
  EXPECT_FALSE(parse({"--scheduler", "bogus"}).has_value());
  EXPECT_FALSE(parse({"--workload"}).has_value());       // missing value
  EXPECT_FALSE(parse({"--repetitions", "0"}).has_value());
  EXPECT_FALSE(parse({"--iterations", "-1"}).has_value());
  EXPECT_FALSE(parse({"--what"}).has_value());
}

TEST(Cli, HelpAndList) {
  std::ostringstream out, err;
  CliOptions help;
  help.help = true;
  EXPECT_EQ(run_cli(help, out, err), 0);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);

  std::ostringstream out2;
  CliOptions list;
  list.list_workloads = true;
  EXPECT_EQ(run_cli(list, out2, err), 0);
  EXPECT_NE(out2.str().find("TeraSort"), std::string::npos);
  EXPECT_NE(out2.str().find("KMeans"), std::string::npos);
}

TEST(Cli, UnknownWorkloadFails) {
  std::ostringstream out, err;
  CliOptions opts;
  opts.workload = "NotReal";
  EXPECT_EQ(run_cli(opts, out, err), 2);
  EXPECT_FALSE(err.str().empty());
}

TEST(Cli, RunsSmallSimulation) {
  std::ostringstream out, err;
  CliOptions opts;
  opts.workload = "GM";
  opts.scheduler = SchedulerKind::kSpark;
  EXPECT_EQ(run_cli(opts, out, err), 0);
  EXPECT_NE(out.str().find("makespan:"), std::string::npos);
  EXPECT_NE(out.str().find("Gramian"), std::string::npos);
}

}  // namespace
}  // namespace rupam
