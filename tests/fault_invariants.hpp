// Shared assertions for the fault-injection suites: a faulted run is
// correct when every partition of the application completed, each
// partition has exactly one winning completion per (re)computation —
// completions == 1 + recomputes — and nothing leaked (no active stages,
// DAG finished).
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "app/simulation.hpp"

namespace rupam {

inline void expect_recovered_completion(Simulation& sim, const Application& app) {
  std::map<std::pair<StageId, int>, int> completions;
  for (const auto& m : sim.scheduler().completed()) ++completions[{m.stage, m.partition}];

  EXPECT_EQ(completions.size(), app.total_tasks()) << "not every partition completed";

  const auto& recomputes = sim.dag().recompute_counts();
  for (const auto& [key, count] : completions) {
    auto it = recomputes.find(key);
    int expected = 1 + (it == recomputes.end() ? 0 : it->second);
    EXPECT_EQ(count, expected) << "stage " << key.first << " partition " << key.second
                               << ": completions must be 1 + recomputes";
  }
  for (const auto& [key, count] : recomputes) {
    EXPECT_GT(completions.count(key), 0u)
        << "recompute recorded for unknown partition (stage " << key.first << ", partition "
        << key.second << ")";
  }

  EXPECT_EQ(sim.scheduler().active_stages(), 0u) << "scheduler leaked an active stage";
  EXPECT_TRUE(sim.dag().finished());
}

}  // namespace rupam
