// Integration tests for the default Spark scheduler model.
#include <gtest/gtest.h>

#include "app/simulation.hpp"
#include "metrics/locality_counter.hpp"

namespace rupam {
namespace {

// Small helper building a one-stage application.
Application one_stage_app(std::vector<TaskSpec> tasks, const std::string& name = "s0") {
  Application app;
  Job job;
  job.id = 0;
  job.name = "job";
  Stage stage;
  stage.id = 0;
  stage.name = name;
  stage.tasks.stage = 0;
  stage.tasks.stage_name = name;
  for (auto& t : tasks) {
    t.stage = 0;
    t.stage_name = name;
    stage.tasks.tasks.push_back(t);
  }
  app.jobs.push_back(std::move(job));
  app.jobs[0].stages.push_back(std::move(stage));
  return app;
}

TaskSpec small_task(TaskId id, double compute = 2.0) {
  TaskSpec t;
  t.id = id;
  t.partition = static_cast<int>(id);
  t.compute = compute;
  t.peak_memory = 128.0 * kMiB;
  return t;
}

TEST(SparkScheduler, RunsAllTasksToCompletion) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 50; ++i) tasks.push_back(small_task(i));
  Application app = one_stage_app(std::move(tasks));
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 0.0);
  EXPECT_EQ(sim.scheduler().completed().size(), 50u);
}

TEST(SparkScheduler, OneTaskPerCoreLimit) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  Simulation sim(cfg);  // Hydra: 208 cores total
  // 300 identical compute-bound tasks: at most 208 run concurrently, so at
  // least two waves are needed. One wave of a 10 ref-core-sec task on the
  // slowest class (stack, perf 1.0) is 10s.
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 300; ++i) tasks.push_back(small_task(i, 10.0));
  Application app = one_stage_app(std::move(tasks));
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 10.0);  // cannot be a single wave
}

TEST(SparkScheduler, PrefersNodeLocalPlacement) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 24; ++i) {
    TaskSpec t = small_task(i);
    t.input_bytes = 8.0 * kMiB;
    t.preferred_nodes = {static_cast<NodeId>(i % 12)};
    tasks.push_back(t);
  }
  Application app = one_stage_app(std::move(tasks));
  sim.run(app);
  for (const auto& m : sim.scheduler().completed()) {
    EXPECT_EQ(m.locality, Locality::kNodeLocal);
    EXPECT_EQ(m.node, m.partition % 12);
  }
}

TEST(SparkScheduler, RelaxesLocalityAfterWait) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.spark.locality_wait = 1.0;
  Simulation sim(cfg);
  // All 40 tasks prefer node 0 (8 cores): pure pinning would serialize
  // into 5 waves; delay scheduling must let other nodes steal.
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 40; ++i) {
    TaskSpec t = small_task(i, 20.0);
    t.input_bytes = 8.0 * kMiB;
    t.preferred_nodes = {0};
    tasks.push_back(t);
  }
  Application app = one_stage_app(std::move(tasks));
  sim.run(app);
  LocalityCounts counts{};
  for (const auto& m : sim.scheduler().completed()) {
    counts[static_cast<std::size_t>(m.locality)]++;
  }
  EXPECT_GT(counts[static_cast<std::size_t>(Locality::kAny)], 0u);       // stolen
  EXPECT_GT(counts[static_cast<std::size_t>(Locality::kNodeLocal)], 0u); // pinned
}

TEST(SparkScheduler, SpeculationRescuesStraggler) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.speculation.enabled = true;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 30; ++i) tasks.push_back(small_task(i, 5.0));
  // One whale: 40x the work. Pinned to a slow stack node via preference.
  TaskSpec whale = small_task(30, 200.0);
  tasks.push_back(whale);
  Application app = one_stage_app(std::move(tasks));
  SimTime makespan = sim.run(app);
  EXPECT_GT(sim.scheduler().straggler_copies(), 0u);
  // Without speculation the whale on a stack core (perf 1.0) takes 200s;
  // a thor copy takes ~57s.
  (void)makespan;
}

TEST(SparkScheduler, SpeculationCanBeDisabled) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.speculation.enabled = false;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 30; ++i) tasks.push_back(small_task(i, 5.0));
  tasks.push_back(small_task(30, 100.0));
  Application app = one_stage_app(std::move(tasks));
  sim.run(app);
  EXPECT_EQ(sim.scheduler().straggler_copies(), 0u);
}

TEST(SparkScheduler, StaticExecutorSizedForWeakestNode) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  Simulation sim(cfg);
  // min node memory (thor: 16 GiB) - 2 GiB headroom = 14 GiB everywhere.
  for (NodeId id : sim.cluster().node_ids()) {
    EXPECT_DOUBLE_EQ(sim.executor(id).heap() / kGiB, 14.0);
  }
}

TEST(SparkScheduler, OomTasksRetryAndComplete) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 60; ++i) {
    TaskSpec t = small_task(i, 10.0);
    t.unmanaged_memory = 2.0 * kGiB;  // 8 per thor node = 16 GiB > 14 heap
    tasks.push_back(t);
  }
  Application app = one_stage_app(std::move(tasks));
  sim.run(app);
  EXPECT_EQ(sim.scheduler().completed().size(), 60u);  // retried to success
}

}  // namespace
}  // namespace rupam
