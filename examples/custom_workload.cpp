// Example: describe your own application with StageProfile/JobProfile and
// watch RUPAM characterize it — a mixed ETL pipeline where an I/O-bound
// ingest, a CPU-bound transform, and a network-bound aggregation run as
// one job per day of input.
//
//   ./custom_workload [days]
#include <cstdlib>
#include <iostream>

#include "app/simulation.hpp"
#include "common/table.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  int days = argc > 1 ? std::atoi(argv[1]) : 6;

  std::cout << "Custom ETL pipeline: ingest (I/O) -> transform (CPU) -> aggregate (net),\n"
            << days << " daily runs. Stage names repeat, so RUPAM's DB_task_char warms up.\n\n";

  TextTable table({"Scheduler", "Makespan (s)", "First transform (s)", "Last transform (s)"});
  for (auto kind : {SchedulerKind::kSpark, SchedulerKind::kRupam}) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    Simulation sim(cfg);

    WorkloadBuilder builder(sim.cluster().node_ids(), /*seed=*/3,
                            hdfs_placement_weights(sim.cluster()));
    Application app;
    app.name = "etl";
    for (int day = 0; day < days; ++day) {
      JobProfile job;
      job.name = "etl-day-" + std::to_string(day);

      StageProfile ingest;
      ingest.name = "etl-ingest";  // stable names across days
      ingest.num_tasks = 96;
      ingest.reads_blocks = true;
      ingest.input_bytes = 96.0 * kMiB;
      ingest.compute = 3.0;
      ingest.shuffle_write_bytes = 48.0 * kMiB;
      ingest.peak_memory = 384.0 * kMiB;
      ingest.skew_cv = 0.25;
      job.stages.push_back(ingest);

      StageProfile transform;
      transform.name = "etl-transform";
      transform.num_tasks = 96;
      transform.shuffle_read_bytes = 48.0 * kMiB;
      transform.compute = 24.0;
      transform.peak_memory = 512.0 * kMiB;
      transform.shuffle_write_bytes = 8.0 * kMiB;
      transform.skew_cv = 0.3;
      transform.heavy_tail = 0.06;
      transform.parents = {0};
      job.stages.push_back(transform);

      StageProfile aggregate;
      aggregate.name = "etl-aggregate";
      aggregate.num_tasks = 24;
      aggregate.is_shuffle_map = false;
      aggregate.shuffle_read_bytes = 32.0 * kMiB;
      aggregate.compute = 2.0;
      aggregate.output_bytes = 8.0 * kMiB;
      aggregate.peak_memory = 256.0 * kMiB;
      aggregate.parents = {1};
      job.stages.push_back(aggregate);
      builder.add_job(app, job);
    }
    app.validate();

    SimTime makespan = sim.run(app);
    // Per-day window from the transform stages.
    std::map<JobId, std::pair<SimTime, SimTime>> windows;
    for (const auto& m : sim.scheduler().completed()) {
      if (m.stage_name != "etl-transform") continue;  // the learnable stage
      JobId day = m.stage / 3;  // stage ids are allocated in job order
      auto [it, fresh] = windows.try_emplace(day, m.launch_time, m.finish_time);
      it->second.first = std::min(it->second.first, m.launch_time);
      it->second.second = std::max(it->second.second, m.finish_time);
    }
    double first = windows.begin()->second.second - windows.begin()->second.first;
    double last = windows.rbegin()->second.second - windows.rbegin()->second.first;
    table.add_row({sim.scheduler().name(), format_fixed(makespan, 1), format_fixed(first, 1),
                   format_fixed(last, 1)});
  }
  table.print(std::cout);
  std::cout << "\nReading: RUPAM runs the CPU-bound transform stages faster than default\n"
               "Spark once DB_task_char has characterized them (compare the per-day\n"
               "transform windows above).\n";
  return 0;
}
