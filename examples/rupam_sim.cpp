// The command-line front end: run any Table III workload under any of
// the four schedulers, with optional utilization sampling and trace
// export. `rupam_sim --help` for options.
#include <iostream>

#include "app/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto options = rupam::parse_cli(args, std::cerr);
  if (!options) {
    std::cerr << rupam::cli_usage();
    return 2;
  }
  return rupam::run_cli(*options, std::cout, std::cerr);
}
