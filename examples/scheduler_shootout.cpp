// Example: head-to-head across all seven Table III workloads with a fixed
// seed — the quickest way to see where heterogeneity-awareness pays off.
//
//   ./scheduler_shootout [seed]
#include <cstdlib>
#include <iostream>

#include "app/simulation.hpp"
#include "common/table.hpp"
#include "workloads/presets.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  std::uint64_t seed = argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  TextTable table({"Workload", "Spark (s)", "RUPAM (s)", "Speedup", "Spark OOM",
                   "Spark losses", "RUPAM relocations"});
  for (const auto& preset : table3_workloads()) {
    double spark_s = 0.0, rupam_s = 0.0;
    std::size_t oom = 0, losses = 0, relocations = 0;
    for (auto kind : {SchedulerKind::kSpark, SchedulerKind::kRupam}) {
      SimulationConfig cfg;
      cfg.scheduler = kind;
      Simulation sim(cfg);
      Application app = build_workload(preset, sim.cluster().node_ids(), seed, 0,
                                       hdfs_placement_weights(sim.cluster()));
      double makespan = sim.run(app);
      if (kind == SchedulerKind::kSpark) {
        spark_s = makespan;
        oom = sim.total_oom_kills();
        losses = sim.total_executor_losses();
      } else {
        rupam_s = makespan;
        relocations = sim.scheduler().relocations();
      }
    }
    table.add_row({preset.name, format_fixed(spark_s, 1), format_fixed(rupam_s, 1),
                   format_fixed(spark_s / rupam_s, 2) + "x", std::to_string(oom),
                   std::to_string(losses), std::to_string(relocations)});
  }
  table.print(std::cout);
  return 0;
}
