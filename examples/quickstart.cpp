// Quickstart: run one workload under both schedulers and compare.
//
//   ./quickstart [workload] [iterations]
//
// Workloads: LR, TeraSort, SQL, PR, TC, GM, KMeans (paper Table III).
#include <cstdlib>
#include <iostream>

#include "app/simulation.hpp"
#include "common/table.hpp"
#include "workloads/presets.hpp"

int main(int argc, char** argv) {
  std::string workload = argc > 1 ? argv[1] : "PR";
  int iterations = argc > 2 ? std::atoi(argv[2]) : 0;

  const rupam::WorkloadPreset& preset = rupam::workload_preset(workload);
  std::cout << "Workload: " << preset.long_name << " (" << preset.input_gb << " GB)\n\n";

  double spark_time = 0.0, rupam_time = 0.0;
  for (auto kind : {rupam::SchedulerKind::kSpark, rupam::SchedulerKind::kRupam}) {
    rupam::SimulationConfig cfg;
    cfg.scheduler = kind;
    rupam::Simulation sim(cfg);
    rupam::Application app =
        rupam::build_workload(preset, sim.cluster().node_ids(), /*seed=*/1, iterations,
                              rupam::hdfs_placement_weights(sim.cluster()));
    double makespan = sim.run(app);
    (kind == rupam::SchedulerKind::kSpark ? spark_time : rupam_time) = makespan;
    std::cout << sim.scheduler().name() << ": " << rupam::format_fixed(makespan, 1)
              << " s  (tasks=" << sim.scheduler().completed().size()
              << ", failures=" << sim.scheduler().failures().size()
              << ", OOM kills=" << sim.total_oom_kills()
              << ", executor losses=" << sim.total_executor_losses() << ")\n";
  }
  std::cout << "\nSpeedup (Spark / RUPAM): " << rupam::format_fixed(spark_time / rupam_time, 2)
            << "x\n";
  return 0;
}
