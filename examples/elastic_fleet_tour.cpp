// Example: the elastic-fleet runtime in one sitting — diurnal arrival
// waves hit a small paid base fleet, the autoscaler mints burst nodes
// when the backlog builds and drains them at the trough, a spot
// revocation reclaims one base node mid-run, and fair-share preemption
// keeps the tenant pools honest. Compare the static run (same fleet, no
// elasticity) printed alongside.
//
//   ./elastic_fleet_tour [seed]
//
// The same scenario is available from the CLI:
//   rupam_sim --tenants 3 --arrival-rate 0.05 --diurnal 1.0 \
//             --diurnal-period 120 --autoscale 6 --preempt \
//             --spot-plan "spot@100:node=1:notice=10" --pool-policy fair
#include <cstdlib>
#include <iostream>

#include "app/simulation.hpp"
#include "cluster/presets.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "faults/fault_plan.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  std::uint64_t seed = argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  Logger::set_level(LogLevel::kError);  // the tables are the story here

  auto make_config = [&](bool elastic) {
    SimulationConfig cfg;
    cfg.scheduler = SchedulerKind::kRupam;
    cfg.seed = seed;
    cfg.pools.policy = PoolPolicy::kFair;

    NodeClassMix base;
    base.name = "base";
    base.count = 4;
    base.base = hulk_spec();
    base.base.hourly_cost = 1.0;  // paid instances: the bill follows membership
    FleetSpec fleet;
    fleet.name = "elastic-tour";
    fleet.seed = seed;
    fleet.classes = {base};
    cfg.nodes = generate_fleet(fleet);

    // One base node is reclaimed by the spot market mid-run: 10 s of
    // drain notice, then a permanent decommission.
    cfg.faults = parse_fault_spec("spot@100:node=1:notice=10");

    if (elastic) {
      cfg.autoscale.enabled = true;
      cfg.autoscale.max_nodes = 6;
      cfg.autoscale.scale_up_step = 2;
      cfg.autoscale.boot_delay = 8.0;
      cfg.autoscale.idle_drain_after = 20.0;
      NodeClassMix burst = base;
      burst.name = "burst";
      cfg.autoscale_class = burst;
      cfg.preemption.enabled = true;
    }
    return cfg;
  };

  TextTable table({"Variant", "Jobs", "Mean JCT (s)", "p95 (s)", "Cost (node-h)",
                   "Scale ups/downs", "Preemptions", "Spot revokes"});
  for (bool elastic : {false, true}) {
    Simulation sim(make_config(elastic));

    ArrivalConfig arrivals;
    arrivals.rate = 0.05;
    arrivals.duration = 240.0;
    arrivals.tenants = 3;
    arrivals.seed = seed;
    arrivals.iterations_override = 1;
    arrivals.mix = {"GM", "PR"};
    arrivals.diurnal_amplitude = 1.0;  // trough 0, peak 2x the mean rate
    arrivals.diurnal_period = 120.0;
    SubmissionStream stream = make_poisson_stream(arrivals, sim.cluster().node_ids());

    TenantRunReport report = sim.run(stream);
    std::size_t ups = 0, downs = 0;
    if (sim.autoscaler() != nullptr) {
      ups = sim.autoscaler()->scale_ups();
      downs = sim.autoscaler()->scale_downs();
    }
    table.add_row({elastic ? "elastic (autoscale+preempt)" : "static",
                   std::to_string(report.jobs.size()), format_fixed(report.overall.mean, 1),
                   format_fixed(report.overall.p95, 1),
                   format_fixed(sim.cluster().provisioned_cost(sim.sim().now()), 2),
                   std::to_string(ups) + "/" + std::to_string(downs),
                   std::to_string(sim.scheduler().preemptions()),
                   std::to_string(sim.injector() ? sim.injector()->spot_revocations() : 0)});
  }
  table.print(std::cout);
  std::cout << "\nThe elastic run pays only for burst capacity it actually held, and\n"
               "the spot-revoked node is never resurrected — its tasks resubmit and\n"
               "finish elsewhere.\n";
  return 0;
}
