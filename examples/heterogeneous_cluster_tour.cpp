// Example: build a *custom* heterogeneous cluster, run a memory-hungry
// graph workload on it under both schedulers, and inspect what happened —
// OOM kills, executor losses, locality trade-offs, utilization.
//
//   ./heterogeneous_cluster_tour [fat_nodes] [thin_nodes]
//
// Demonstrates the public API surface beyond the built-in Hydra preset:
// NodeSpec construction, SimulationConfig, per-run metrics, and the
// utilization sampler.
#include <cstdlib>
#include <iostream>

#include "app/simulation.hpp"
#include "common/table.hpp"
#include "metrics/locality_counter.hpp"
#include "workloads/presets.hpp"

namespace {

rupam::NodeSpec fat_node(int index) {
  rupam::NodeSpec s;
  s.name = "fat" + std::to_string(index);
  s.node_class = "fat";
  s.cores = 48;
  s.cpu_ghz = 2.2;
  s.cpu_perf = 1.2;
  s.memory = 128 * rupam::kGiB;
  s.net_bandwidth = rupam::gbit_per_s(10.0);
  s.has_ssd = false;
  s.disk_capacity = 4096 * rupam::kGiB;
  return s;
}

rupam::NodeSpec thin_node(int index) {
  rupam::NodeSpec s;
  s.name = "thin" + std::to_string(index);
  s.node_class = "thin";
  s.cores = 4;
  s.cpu_ghz = 3.8;
  s.cpu_perf = 3.0;
  s.memory = 8 * rupam::kGiB;  // memory-starved: OOM territory for Spark
  s.net_bandwidth = rupam::gbit_per_s(1.0);
  s.has_ssd = true;
  s.disk_capacity = 256 * rupam::kGiB;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  int fats = argc > 1 ? std::atoi(argv[1]) : 3;
  int thins = argc > 2 ? std::atoi(argv[2]) : 5;

  std::cout << "Custom cluster: " << fats << " fat (48-core/128 GB/HDD) + " << thins
            << " thin (4-core fast/8 GB/SSD) nodes\n"
            << "Workload: PageRank (memory-heavy joins over a cached graph)\n\n";

  TextTable table({"Scheduler", "Makespan (s)", "OOM kills", "Exec losses", "PROCESS", "ANY",
                   "Avg CPU %", "Avg mem (GB)"});
  for (auto kind : {SchedulerKind::kSpark, SchedulerKind::kRupam}) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    cfg.sample_utilization = true;
    for (int i = 0; i < fats; ++i) cfg.nodes.push_back(fat_node(i));
    for (int i = 0; i < thins; ++i) cfg.nodes.push_back(thin_node(i));

    Simulation sim(cfg);
    Application app = build_workload(workload_preset("PR"), sim.cluster().node_ids(),
                                     /*seed=*/11, /*iterations=*/3,
                                     hdfs_placement_weights(sim.cluster()));
    SimTime makespan = sim.run(app);
    LocalityCounts locality = count_locality(sim.scheduler().completed());
    table.add_row({sim.scheduler().name(), format_fixed(makespan, 1),
                   std::to_string(sim.total_oom_kills()),
                   std::to_string(sim.total_executor_losses()),
                   std::to_string(locality[0]), std::to_string(locality[3]),
                   format_fixed(sim.sampler()->avg_cpu_util() * 100.0, 1),
                   format_fixed(sim.sampler()->avg_memory_used() / kGiB, 1)});
  }
  table.print(std::cout);

  std::cout << "\nReading: default Spark sizes every executor for the 8 GB thin nodes and\n"
               "packs tasks by cores; RUPAM sizes executors per node, guards memory at\n"
               "dispatch, and steers the heavy join tasks to the fat nodes.\n";
  return 0;
}
