// Table V: number of tasks at each locality level under default Spark and
// RUPAM. Expected shape: Spark keeps more PROCESS_LOCAL tasks; RUPAM
// trades locality for resource matching (more ANY); RACK_LOCAL is always
// zero on the single-rack cluster.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  bench::print_header("Table V", "Task counts per data-locality level");

  TextTable table({"Workload", "PROCESS Spark", "PROCESS RUPAM", "NODE Spark", "NODE RUPAM",
                   "ANY Spark", "ANY RUPAM"});
  bool rack_zero = true;
  int process_shape = 0, any_shape = 0;
  for (const auto& preset : table3_workloads()) {
    bench::Comparison c = bench::compare(preset, reps);
    LocalityCounts spark{}, rupam{};
    for (const auto& r : c.spark.runs) {
      for (int l = 0; l < kNumLocalityLevels; ++l) spark[l] += r.locality[l];
    }
    for (const auto& r : c.rupam.runs) {
      for (int l = 0; l < kNumLocalityLevels; ++l) rupam[l] += r.locality[l];
    }
    auto avg = [reps](std::size_t total) {
      return std::to_string(total / static_cast<std::size_t>(reps));
    };
    table.add_row({preset.name, avg(spark[0]), avg(rupam[0]), avg(spark[1]), avg(rupam[1]),
                   avg(spark[3]), avg(rupam[3])});
    rack_zero = rack_zero && spark[2] == 0 && rupam[2] == 0;
    process_shape += spark[0] >= rupam[0];
    any_shape += rupam[3] >= spark[3];
  }
  table.print(std::cout);
  std::cout << "\nRACK_LOCAL: " << (rack_zero ? "zero for all workloads (matches paper)" : "NONZERO (mismatch)")
            << "\nSpark >= RUPAM on PROCESS_LOCAL for " << process_shape
            << "/7 workloads; RUPAM >= Spark on ANY for " << any_shape << "/7.\n"
            << "Paper: Spark always has more PROCESS_LOCAL; RUPAM trades locality for\n"
               "better-matching resources, which is justified by end-to-end time.\n";
  return 0;
}
