#include "bench_common.hpp"

#include <sys/resource.h>

#include <fstream>

#include "common/json_writer.hpp"
#include "simcore/kernel_stats.hpp"

namespace rupam::bench {

void print_header(const std::string& artifact, const std::string& description) {
  std::cout << "==============================================================\n"
            << artifact << " — " << description << "\n"
            << "(RUPAM reproduction; simulated Hydra cluster — compare shapes,"
               " not absolute seconds)\n"
            << "==============================================================\n";
}

Comparison compare(const WorkloadPreset& preset, int repetitions, int iterations_override,
                   bool sample_utilization, bool keep_task_metrics, std::uint64_t base_seed) {
  ExperimentConfig cfg;
  cfg.repetitions = repetitions;
  cfg.iterations_override = iterations_override;
  cfg.sample_utilization = sample_utilization;
  cfg.keep_task_metrics = keep_task_metrics;
  cfg.base_seed = base_seed;
  Comparison out;
  cfg.scheduler = SchedulerKind::kSpark;
  out.spark = run_experiment(preset, cfg);
  cfg.scheduler = SchedulerKind::kRupam;
  out.rupam = run_experiment(preset, cfg);
  return out;
}

std::string gb(double bytes) { return format_fixed(bytes / kGiB, 2); }

std::string pct(double fraction) { return format_fixed(fraction * 100.0, 1); }

double peak_rss_mib() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

JsonReport::JsonReport(std::string name) : path_("BENCH_" + std::move(name) + ".json") {}

void JsonReport::add(const std::string& key, double value) {
  entries_.emplace_back(key, json_number(value));
}

void JsonReport::add(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, json_quote(value));
}

void JsonReport::add_bool(const std::string& key, bool value) {
  entries_.emplace_back(key, value ? "true" : "false");
}

KernelStats Comparison::kernel_total() const {
  KernelStats total = spark.kernel_total();
  total += rupam.kernel_total();
  return total;
}

void JsonReport::add_comparison(const std::string& prefix, const Comparison& c) {
  add(prefix + "_spark_s", c.spark.mean_makespan());
  add(prefix + "_rupam_s", c.rupam.mean_makespan());
  add(prefix + "_speedup", c.speedup());
  record_kernel(c.kernel_total());
}

void JsonReport::record_kernel(const KernelStats& stats) { kernel_ += stats; }

bool JsonReport::write() const {
  std::ofstream f(path_);
  if (!f) {
    std::cerr << "cannot write " << path_ << "\n";
    return false;
  }
  // Standard memory/allocation footer appended to every report: peak RSS
  // plus the kernel counters of the runs this bench measured and recorded
  // via record_kernel()/add_comparison() (see simcore/kernel_stats.hpp).
  const KernelStats& ks = kernel_;
  std::vector<std::pair<std::string, std::string>> all = entries_;
  all.emplace_back("peak_rss_mib", json_number(peak_rss_mib()));
  all.emplace_back("sim_events_scheduled", json_number(static_cast<double>(ks.events_scheduled)));
  all.emplace_back("sim_events_executed", json_number(static_cast<double>(ks.events_executed)));
  all.emplace_back("sim_events_cancelled", json_number(static_cast<double>(ks.events_cancelled)));
  all.emplace_back("sim_arena_slot_allocs", json_number(static_cast<double>(ks.arena_slot_allocs)));
  all.emplace_back("sim_callback_heap_allocs",
                   json_number(static_cast<double>(ks.callback_heap_allocs)));
  double queue_allocs = static_cast<double>(ks.arena_slot_allocs + ks.callback_heap_allocs);
  all.emplace_back("sim_queue_allocs_per_event",
                   json_number(ks.events_executed > 0
                                   ? queue_allocs / static_cast<double>(ks.events_executed)
                                   : 0.0));
  f << "{\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    f << "  " << json_quote(all[i].first) << ": " << all[i].second
      << (i + 1 < all.size() ? "," : "") << "\n";
  }
  f << "}\n";
  std::cout << "[json] wrote " << path_ << "\n";
  return f.good();
}

}  // namespace rupam::bench
