#include "bench_common.hpp"

#include <fstream>

#include "common/json_writer.hpp"

namespace rupam::bench {

void print_header(const std::string& artifact, const std::string& description) {
  std::cout << "==============================================================\n"
            << artifact << " — " << description << "\n"
            << "(RUPAM reproduction; simulated Hydra cluster — compare shapes,"
               " not absolute seconds)\n"
            << "==============================================================\n";
}

Comparison compare(const WorkloadPreset& preset, int repetitions, int iterations_override,
                   bool sample_utilization, bool keep_task_metrics, std::uint64_t base_seed) {
  ExperimentConfig cfg;
  cfg.repetitions = repetitions;
  cfg.iterations_override = iterations_override;
  cfg.sample_utilization = sample_utilization;
  cfg.keep_task_metrics = keep_task_metrics;
  cfg.base_seed = base_seed;
  Comparison out;
  cfg.scheduler = SchedulerKind::kSpark;
  out.spark = run_experiment(preset, cfg);
  cfg.scheduler = SchedulerKind::kRupam;
  out.rupam = run_experiment(preset, cfg);
  return out;
}

std::string gb(double bytes) { return format_fixed(bytes / kGiB, 2); }

std::string pct(double fraction) { return format_fixed(fraction * 100.0, 1); }

JsonReport::JsonReport(std::string name) : path_("BENCH_" + std::move(name) + ".json") {}

void JsonReport::add(const std::string& key, double value) {
  entries_.emplace_back(key, json_number(value));
}

void JsonReport::add(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, json_quote(value));
}

void JsonReport::add_comparison(const std::string& prefix, const Comparison& c) {
  add(prefix + "_spark_s", c.spark.mean_makespan());
  add(prefix + "_rupam_s", c.rupam.mean_makespan());
  add(prefix + "_speedup", c.speedup());
}

bool JsonReport::write() const {
  std::ofstream f(path_);
  if (!f) {
    std::cerr << "cannot write " << path_ << "\n";
    return false;
  }
  f << "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    f << "  " << json_quote(entries_[i].first) << ": " << entries_[i].second
      << (i + 1 < entries_.size() ? "," : "") << "\n";
  }
  f << "}\n";
  std::cout << "[json] wrote " << path_ << "\n";
  return f.good();
}

}  // namespace rupam::bench
