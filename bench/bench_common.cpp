#include "bench_common.hpp"

namespace rupam::bench {

void print_header(const std::string& artifact, const std::string& description) {
  std::cout << "==============================================================\n"
            << artifact << " — " << description << "\n"
            << "(RUPAM reproduction; simulated Hydra cluster — compare shapes,"
               " not absolute seconds)\n"
            << "==============================================================\n";
}

Comparison compare(const WorkloadPreset& preset, int repetitions, int iterations_override,
                   bool sample_utilization, bool keep_task_metrics, std::uint64_t base_seed) {
  ExperimentConfig cfg;
  cfg.repetitions = repetitions;
  cfg.iterations_override = iterations_override;
  cfg.sample_utilization = sample_utilization;
  cfg.keep_task_metrics = keep_task_metrics;
  cfg.base_seed = base_seed;
  Comparison out;
  cfg.scheduler = SchedulerKind::kSpark;
  out.spark = run_experiment(preset, cfg);
  cfg.scheduler = SchedulerKind::kRupam;
  out.rupam = run_experiment(preset, cfg);
  return out;
}

std::string gb(double bytes) { return format_fixed(bytes / kGiB, 2); }

std::string pct(double fraction) { return format_fixed(fraction * 100.0, 1); }

}  // namespace rupam::bench
