// Table II: specifications of Hydra cluster nodes.
#include "bench_common.hpp"
#include "cluster/presets.hpp"

int main() {
  using namespace rupam;
  bench::print_header("Table II", "Specifications of Hydra cluster nodes");

  Simulator sim;
  Cluster cluster(sim);
  build_hydra(cluster);

  TextTable table({"Name", "CPU (GHz)", "Cores", "Memory (GB)", "Network (GbE)", "SSD", "GPU",
                   "#"});
  for (const std::string cls : {"thor", "hulk", "stack"}) {
    auto ids = cluster.nodes_of_class(cls);
    const NodeSpec& s = cluster.node(ids.front()).spec();
    table.add_row({cls, format_number(s.cpu_ghz), std::to_string(s.cores),
                   format_number(to_gib(s.memory)), format_number(s.net_bandwidth * 8.0 / 1e9),
                   s.has_ssd ? "Y" : "N", s.gpus > 0 ? "Y" : "N",
                   std::to_string(ids.size())});
  }
  table.print(std::cout);
  std::cout << "\nPaper: 6x thor (8-core, 16 GB, SSD), 4x hulk (32-core, 64 GB, 10 GbE),\n"
               "2x stack (16-core, 48 GB, NVIDIA Tesla GPU); 12 workers + master.\n";
  return 0;
}
