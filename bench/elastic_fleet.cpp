// Elastic-fleet bench (not a paper figure — exercises the PR-7 runtime
// membership layer): diurnal arrival waves hit three provisioning
// strategies for the same tenant load.
//
//   static-large  — sized for the peak: base fleet + all burst nodes held
//                   for the whole run. Best p95, worst bill.
//   static-small  — sized for the trough: base fleet only. Cheapest bill,
//                   the waves pile up and the tail explodes.
//   elastic       — base fleet + pending-pressure autoscaling over the
//                   same burst-node template, with fair-share preemption
//                   on. Burst capacity exists only while the wave does.
//
// Headline gate: elastic beats static-large on cost x p95 JCT — the bill
// scales with the waves while the tail stays in static-large territory.
// Cost is node-hours weighted by each class's hourly_cost, integrated by
// Cluster::provisioned_cost over actual membership intervals.
#include <optional>

#include "app/simulation.hpp"
#include "bench_common.hpp"
#include "cluster/presets.hpp"
#include "common/stats.hpp"

namespace {

using namespace rupam;

struct Scenario {
  SimTime duration = 240.0;  // arrival horizon (two full diurnal waves)
  double rate = 0.05;        // mean apps per second
  double amplitude = 1.0;    // full swing: trough 0, peak 2x mean
  SimTime period = 120.0;    // diurnal wave period
  int tenants = 3;
  int base_nodes = 4;
  int burst_nodes = 6;
  std::uint64_t seed = 1;
};

NodeClassMix base_class(const Scenario& sc) {
  NodeClassMix mix;
  mix.name = "base";
  mix.count = sc.base_nodes;
  mix.base = hulk_spec();
  mix.base.hourly_cost = 1.0;
  return mix;
}

NodeClassMix burst_class(const Scenario& sc) {
  NodeClassMix mix;
  mix.name = "burst";
  mix.count = sc.burst_nodes;
  mix.base = hulk_spec();
  mix.base.hourly_cost = 1.0;
  return mix;
}

struct VariantResult {
  std::size_t jobs = 0;
  double mean = 0.0;
  double p95 = 0.0;
  double queueing = 0.0;
  SimTime makespan = 0.0;
  double cost = 0.0;  // hourly_cost-weighted node-hours actually held
  double score = 0.0;  // cost x p95
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  std::size_t preemptions = 0;
  KernelStats kernel{};
};

VariantResult run_variant(const Scenario& sc, bool with_burst_static, bool elastic) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.seed = sc.seed;
  cfg.pools.policy = PoolPolicy::kFair;

  FleetSpec fleet;
  fleet.name = elastic || !with_burst_static ? "elastic-base" : "static-large";
  fleet.seed = sc.seed;
  fleet.classes = {base_class(sc)};
  if (with_burst_static) fleet.classes.push_back(burst_class(sc));
  cfg.nodes = generate_fleet(fleet);

  if (elastic) {
    cfg.autoscale.enabled = true;
    cfg.autoscale.max_nodes = sc.burst_nodes;
    cfg.autoscale.scale_up_step = 2;
    cfg.autoscale.boot_delay = 8.0;
    cfg.autoscale.idle_drain_after = 20.0;
    cfg.autoscale_class = burst_class(sc);
    cfg.preemption.enabled = true;
  }

  Simulation sim(cfg);
  ArrivalConfig arrivals;
  arrivals.rate = sc.rate;
  arrivals.duration = sc.duration;
  arrivals.tenants = sc.tenants;
  arrivals.seed = sc.seed;
  arrivals.iterations_override = 1;
  arrivals.mix = {"GM", "PR"};
  arrivals.diurnal_amplitude = sc.amplitude;
  arrivals.diurnal_period = sc.period;
  SubmissionStream stream = make_poisson_stream(arrivals, sim.cluster().node_ids());

  TenantRunReport report = sim.run(stream);
  VariantResult out;
  out.kernel = sim.sim().stats();
  out.makespan = report.makespan;
  out.jobs = report.jobs.size();
  out.mean = report.overall.mean;
  out.p95 = report.overall.p95;
  out.queueing = report.overall.mean_queueing;
  out.cost = sim.cluster().provisioned_cost(sim.sim().now());
  out.score = out.cost * out.p95;
  if (sim.autoscaler() != nullptr) {
    out.scale_ups = sim.autoscaler()->scale_ups();
    out.scale_downs = sim.autoscaler()->scale_downs();
  }
  out.preemptions = sim.scheduler().preemptions();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  Scenario sc;
  if (argc > 1) sc.duration = std::atof(argv[1]);  // smoke runs pass a short horizon
  if (argc > 2) sc.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  bench::print_header("Elastic fleet",
                      "Diurnal waves: static peak/trough provisioning vs autoscale+preempt");

  struct Variant {
    const char* label;
    const char* slug;
    bool with_burst_static;
    bool elastic;
  };
  const std::vector<Variant> variants = {
      {"static-large (peak-sized)", "static_large", true, false},
      {"static-small (trough-sized)", "static_small", false, false},
      {"elastic (autoscale+preempt)", "elastic", false, true},
  };

  bench::JsonReport json("elastic_fleet");
  json.add("duration_s", sc.duration);
  json.add("arrival_rate", sc.rate);
  json.add("diurnal_amplitude", sc.amplitude);
  json.add("diurnal_period_s", sc.period);
  json.add("base_nodes", static_cast<double>(sc.base_nodes));
  json.add("burst_nodes", static_cast<double>(sc.burst_nodes));

  TextTable table({"Variant", "Jobs", "Mean JCT (s)", "p95 (s)", "Queueing (s)",
                   "Cost (node-h)", "Cost x p95"});
  std::optional<VariantResult> large, small, elastic;
  for (const Variant& v : variants) {
    VariantResult r = run_variant(sc, v.with_burst_static, v.elastic);
    json.record_kernel(r.kernel);
    table.add_row({v.label, std::to_string(r.jobs), format_fixed(r.mean, 1),
                   format_fixed(r.p95, 1), format_fixed(r.queueing, 1),
                   format_fixed(r.cost, 2), format_fixed(r.score, 1)});
    json.add(std::string(v.slug) + "_jobs", static_cast<double>(r.jobs));
    json.add(std::string(v.slug) + "_mean_jct_s", r.mean);
    json.add(std::string(v.slug) + "_p95_jct_s", r.p95);
    json.add(std::string(v.slug) + "_cost_node_h", r.cost);
    json.add(std::string(v.slug) + "_cost_x_p95", r.score);
    if (v.elastic) {
      json.add("elastic_scale_ups", static_cast<double>(r.scale_ups));
      json.add("elastic_scale_downs", static_cast<double>(r.scale_downs));
      json.add("elastic_preemptions", static_cast<double>(r.preemptions));
    }
    if (std::string(v.slug) == "static_large") large = r;
    if (std::string(v.slug) == "static_small") small = r;
    if (v.elastic) elastic = r;
  }
  table.print(std::cout);

  bool beats_large = elastic->score < large->score;
  bool scaled = elastic->scale_ups > 0;
  json.add("elastic_beats_static_large", beats_large ? "yes" : "no");
  json.add("autoscaler_engaged", scaled ? "yes" : "no");
  json.write();
  std::cout << "\nReading: static-large pays for burst capacity around the clock;\n"
               "static-small melts down at every peak. Elastic mints burst nodes when\n"
               "the backlog builds and returns them at the trough, so the bill follows\n"
               "the waves while the tail stays near static-large.\n"
            << (beats_large && scaled ? "[shape OK] " : "[shape MISMATCH] ")
            << "elastic cost x p95 " << format_fixed(elastic->score, 1) << " vs static-large "
            << format_fixed(large->score, 1) << " (static-small "
            << format_fixed(small->score, 1) << ", " << elastic->scale_ups << " scale-ups, "
            << elastic->preemptions << " preemptions)\n";
  return beats_large && scaled ? 0 : 1;
}
