// Fig 9: standard deviation of per-node utilization over time while
// running PageRank — low and stable stddev means the scheduler balances
// load across the heterogeneous nodes.
#include "app/simulation.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"

int main() {
  using namespace rupam;
  bench::print_header("Fig 9", "Cross-node utilization stddev over time (PageRank)");

  struct Series {
    std::vector<double> cpu_sd, net_sd, disk_sd;
    double makespan = 0.0;
  };
  auto run_one = [](SchedulerKind kind) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    cfg.sample_utilization = true;
    Simulation sim(cfg);
    Application app = build_workload(workload_preset("PR"), sim.cluster().node_ids(), 1, 0,
                                     hdfs_placement_weights(sim.cluster()));
    Series s;
    s.makespan = sim.run(app);
    const UtilizationSampler* sampler = sim.sampler();
    s.cpu_sd = cross_series_stddev(sampler->cpu_series(s.makespan));
    s.net_sd = cross_series_stddev(sampler->net_series(s.makespan));
    s.disk_sd = cross_series_stddev(sampler->disk_series(s.makespan));
    return s;
  };

  Series spark = run_one(SchedulerKind::kSpark);
  Series rupam = run_one(SchedulerKind::kRupam);

  auto summarize = [](const std::vector<double>& sd) {
    RunningStats s;
    for (double v : sd) s.add(v);
    return s;
  };
  RunningStats sc = summarize(spark.cpu_sd), rc = summarize(rupam.cpu_sd);
  RunningStats sn = summarize(spark.net_sd), rn = summarize(rupam.net_sd);
  RunningStats sd = summarize(spark.disk_sd), rd = summarize(rupam.disk_sd);

  std::cout << "t(s)  spark_cpu_sd  rupam_cpu_sd  spark_net_sd(MB/s)  rupam_net_sd(MB/s)\n";
  std::size_t len = std::min(spark.cpu_sd.size(), rupam.cpu_sd.size());
  for (std::size_t t = 0; t < len; t += std::max<std::size_t>(1, len / 40)) {
    std::cout << t << "  " << format_fixed(spark.cpu_sd[t], 3) << "  "
              << format_fixed(rupam.cpu_sd[t], 3) << "  "
              << format_fixed(spark.net_sd[t] / kMiB, 1) << "  "
              << format_fixed(rupam.net_sd[t] / kMiB, 1) << "\n";
  }

  TextTable table({"Metric", "Spark mean sd", "Spark peak sd", "RUPAM mean sd",
                   "RUPAM peak sd"});
  table.add_row({"CPU util", format_fixed(sc.mean(), 3), format_fixed(sc.max(), 3),
                 format_fixed(rc.mean(), 3), format_fixed(rc.max(), 3)});
  table.add_row({"Network (MB/s)", format_fixed(sn.mean() / kMiB, 1),
                 format_fixed(sn.max() / kMiB, 1), format_fixed(rn.mean() / kMiB, 1),
                 format_fixed(rn.max() / kMiB, 1)});
  table.add_row({"Disk (MB/s)", format_fixed(sd.mean() / kMiB, 1),
                 format_fixed(sd.max() / kMiB, 1), format_fixed(rd.mean() / kMiB, 1),
                 format_fixed(rd.max() / kMiB, 1)});
  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nPaper shape: RUPAM keeps a lower, stabler stddev (balanced utilization);\n"
               "Spark shows spikes on network and disk during the late shuffle stages.\n"
            << "[shape] RUPAM cpu-sd mean lower: " << (rc.mean() <= sc.mean() ? "yes" : "NO")
            << "; RUPAM net-sd peak lower: " << (rn.max() <= sn.max() ? "yes" : "NO") << "\n";
  return 0;
}
