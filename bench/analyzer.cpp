// Analyzer regression gates (DESIGN.md §13).
//
// Sections:
//  * fig3     — the Fig 3 motivation scenario (PageRank under Spark on the
//               slow-CPU / fast-CPU pair) run with analysis enabled. Gates:
//               every job's critical-path attribution sums to its JCT
//               within 1e-9, and at least one straggler is attributed to
//               the slow node class (the machine-readable form of the
//               paper's motivating observation).
//  * overhead — analyze_run wall time must stay <= 5% of the simulation's
//               own wall time on the same run (the analyzer is a post-run
//               pass; it must never dominate the experiment).
//  * golden   — the scheduling-event trace CSV of a run with analysis
//               enabled is byte-identical to the same seed with analysis
//               off: artifact collection only copies ids, it never
//               schedules simulator events.
//
// usage: analyzer  (no arguments; writes BENCH_analyzer.json)
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>

#include "app/simulation.hpp"
#include "bench_common.hpp"
#include "cluster/presets.hpp"
#include "metrics/event_trace.hpp"
#include "obs/analyzer.hpp"
#include "workloads/presets.hpp"

namespace {

constexpr double kMaxAnalyzerShare = 0.05;  // of sim wall
constexpr double kJctTolerance = 1e-9;

rupam::SimulationConfig fig3_config(bool analysis) {
  using namespace rupam;
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.switch_bandwidth = gbit_per_s(10.0);
  {
    Simulator probe_sim;
    Cluster probe(probe_sim, gbit_per_s(10.0));
    build_motivation_pair(probe);
    for (NodeId id : probe.node_ids()) cfg.nodes.push_back(probe.node(id).spec());
  }
  cfg.enable_trace = true;  // both runs trace; only one analyzes
  if (analysis) {
    cfg.enable_analysis = true;
    cfg.enable_spans = true;
    cfg.enable_audit = true;
  }
  return cfg;
}

rupam::Application fig3_app(rupam::Simulation& sim) {
  using namespace rupam;
  WorkloadParams params;
  params.input_gb = 2.0;
  // The paper's Fig 3 runs one iteration; five give the overhead gate a
  // simulation long enough that fixed analyzer costs can't dominate.
  params.iterations = 5;
  params.seed = 1;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  return make_pagerank(sim.cluster().node_ids(), params);
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace rupam;
  bench::print_header("Analyzer", "post-run diagnosis: attribution exactness, overhead and "
                                  "golden-trace safety");
  bench::JsonReport json("analyzer");
  int failures = 0;

  // --- fig3 + overhead: one analyzed run --------------------------------
  double sim_ms = 0.0;
  double analyzer_ms = 0.0;
  std::string analyzed_csv;
  {
    Simulation sim(fig3_config(/*analysis=*/true));
    Application app = fig3_app(sim);
    auto t0 = std::chrono::steady_clock::now();
    sim.run(app);
    sim_ms = wall_ms_since(t0);

    auto t1 = std::chrono::steady_clock::now();
    RunDiagnosis diag = analyze_run(sim.run_artifacts());
    analyzer_ms = wall_ms_since(t1);
    json.record_kernel(sim.sim().stats());

    // Attribution exactness: every job's categories sum to its JCT.
    double worst = 0.0;
    for (const JobDiagnosis& j : diag.jobs) {
      worst = std::max(worst, std::abs(j.critical_path.total() - j.jct));
    }
    json.add("fig3_jobs", static_cast<double>(diag.jobs.size()));
    json.add("fig3_attempts", static_cast<double>(diag.attempts));
    json.add("fig3_stragglers", static_cast<double>(diag.stragglers.size()));
    json.add("fig3_worst_jct_residual_s", worst);
    std::cout << "fig3: " << diag.jobs.size() << " jobs, " << diag.attempts << " attempts, "
              << diag.stragglers.size() << " stragglers; worst JCT residual "
              << worst << " s\n";
    if (worst > kJctTolerance) {
      std::cerr << "FAIL: critical-path attribution off by " << worst << " s > "
                << kJctTolerance << " — the categories no longer tile the JCT\n";
      ++failures;
    }

    // Fig 3's point, machine-readable: the slow-CPU node breeds stragglers.
    std::size_t slow_class =
        diag.stragglers_by_cause[static_cast<std::size_t>(StragglerCause::kSlowNodeClass)];
    json.add("fig3_slow_node_class_stragglers", static_cast<double>(slow_class));
    std::cout << "fig3: " << slow_class << " stragglers attributed to slow_node_class\n";
    if (slow_class == 0) {
      std::cerr << "FAIL: no straggler attributed to slow_node_class on the motivation pair\n";
      ++failures;
    }

    json.add("fig3_sim_wall_ms", sim_ms);
    json.add("fig3_analyzer_wall_ms", analyzer_ms);

    std::ostringstream csv;
    sim.trace()->write_csv(csv);
    analyzed_csv = csv.str();
  }

  // --- overhead: Hydra-scale run ----------------------------------------
  // The share gate runs on the paper's 12-node testbed (the cluster every
  // experiment uses), not the 2-node motivation pair — there the sim does
  // almost nothing per attempt and any fixed cost looks enormous.
  {
    SimulationConfig cfg;
    cfg.scheduler = SchedulerKind::kRupam;
    cfg.enable_analysis = true;
    cfg.enable_spans = true;
    cfg.enable_audit = true;
    cfg.enable_trace = true;
    Simulation sim(cfg);
    WorkloadPreset preset = workload_preset("PR");
    Application app = build_workload(preset, sim.cluster().node_ids(), /*seed=*/1,
                                     /*iterations_override=*/10,
                                     hdfs_placement_weights(sim.cluster()));
    auto t0 = std::chrono::steady_clock::now();
    sim.run(app);
    double hydra_sim_ms = wall_ms_since(t0);

    auto t1 = std::chrono::steady_clock::now();
    RunDiagnosis diag = analyze_run(sim.run_artifacts());
    double hydra_analyzer_ms = wall_ms_since(t1);
    json.record_kernel(sim.sim().stats());

    double share = hydra_sim_ms > 0.0 ? hydra_analyzer_ms / hydra_sim_ms : 0.0;
    json.add("hydra_attempts", static_cast<double>(diag.attempts));
    json.add("sim_wall_ms", hydra_sim_ms);
    json.add("analyzer_wall_ms", hydra_analyzer_ms);
    json.add("analyzer_share_of_sim", share);
    std::cout << "overhead: analyze_run " << format_fixed(hydra_analyzer_ms, 2)
              << " ms vs sim " << format_fixed(hydra_sim_ms, 1) << " ms on Hydra ("
              << bench::pct(share) << ")\n";
    if (share > kMaxAnalyzerShare) {
      std::cerr << "FAIL: analyzer wall " << bench::pct(share) << " of sim wall > "
                << bench::pct(kMaxAnalyzerShare) << "\n";
      ++failures;
    }
  }

  // --- golden: same seed, analysis off — trace must not move ------------
  {
    Simulation sim(fig3_config(/*analysis=*/false));
    Application app = fig3_app(sim);
    sim.run(app);
    json.record_kernel(sim.sim().stats());
    std::ostringstream csv;
    sim.trace()->write_csv(csv);
    bool identical = csv.str() == analyzed_csv;
    json.add("golden_trace_identical", identical ? 1.0 : 0.0);
    json.add("golden_trace_bytes", static_cast<double>(csv.str().size()));
    std::cout << "golden: event-trace CSV " << csv.str().size() << " bytes, analysis on vs off "
              << (identical ? "byte-identical" : "DIFFERS") << "\n";
    if (!identical) {
      std::cerr << "FAIL: enabling analysis perturbed the scheduling-event trace\n";
      ++failures;
    }
  }

  json.write();
  if (failures > 0) return 1;
  std::cout << "\nReading: the diagnosis is exact (categories tile each JCT), cheap (a\n"
               "few percent of the run it explains) and inert (recording artifacts\n"
               "schedules nothing, so flags-off traces stay golden).\n";
  return 0;
}
