// Fig 6: speedup of LR under RUPAM vs default Spark as the number of
// iterations grows — DB_task_char warms up across iterations, so the
// speedup rises (paper: up to ~3.4x, never below 1x).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  bench::print_header("Fig 6", "LR speedup vs number of iterations (DB_task_char warm-up)");

  const WorkloadPreset& lr = workload_preset("LR");
  TextTable table({"Iterations", "Spark (s)", "RUPAM (s)", "Speedup"});
  bench::JsonReport json("fig6_iterations");
  std::vector<double> speedups;
  for (int iters : {1, 2, 4, 6, 8, 10, 12}) {
    bench::Comparison c = bench::compare(lr, reps, iters);
    speedups.push_back(c.speedup());
    json.add_comparison("iters_" + std::to_string(iters), c);
    table.add_row({std::to_string(iters), format_fixed(c.spark.mean_makespan(), 1),
                   format_fixed(c.rupam.mean_makespan(), 1),
                   format_fixed(c.speedup(), 2) + "x"});
  }
  table.print(std::cout);
  json.write();

  std::cout << "\nPaper shape: speedup grows with iteration count (up to ~3.4x) and RUPAM\n"
               "matches or outperforms Spark at every point.\n";
  bool monotone_ish = speedups.back() > speedups.front();
  std::cout << (monotone_ish ? "[shape OK] " : "[shape MISMATCH] ")
            << "speedup at 12 iterations (" << format_fixed(speedups.back(), 2)
            << "x) vs 1 iteration (" << format_fixed(speedups.front(), 2) << "x)\n";
  return 0;
}
