// Fig 3: task distribution and execution breakdown of PageRank on the
// two-node motivational cluster (node-1: 1.6 GHz CPU + 1 GbE; node-2:
// 2.4 GHz + 10 GbE) under the default Spark scheduler. Shows per-task
// compute/shuffle/serialization/scheduler-delay and the skewed, capability
// -blind task assignment the paper motivates RUPAM with.
#include "app/simulation.hpp"
#include "bench_common.hpp"
#include "cluster/presets.hpp"
#include "metrics/breakdown.hpp"

int main() {
  using namespace rupam;
  bench::print_header("Fig 3", "PageRank task breakdown on the 2-node motivation cluster");

  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.switch_bandwidth = gbit_per_s(10.0);  // so the NIC asymmetry matters
  {
    Simulator probe_sim;
    Cluster probe(probe_sim, gbit_per_s(10.0));
    build_motivation_pair(probe);
    for (NodeId id : probe.node_ids()) cfg.nodes.push_back(probe.node(id).spec());
  }
  Simulation sim(cfg);

  WorkloadParams params;
  params.input_gb = 2.0;  // the paper's 2 GB PageRank input
  params.iterations = 1;
  params.seed = 1;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  Application app = make_pagerank(sim.cluster().node_ids(), params);
  sim.run(app);

  // One representative stage: the first pr-contrib stage.
  std::array<int, 2> task_count{0, 0};
  std::array<double, 2> compute{0.0, 0.0}, shuffle{0.0, 0.0};
  std::cout << "task  node    compute  shuffle  serialization  sched-delay  (seconds)\n";
  for (const auto& m : sim.scheduler().completed()) {
    if (m.stage_name != "pr-contrib" || m.stage > 2) continue;
    TaskBreakdown b = task_breakdown(m);
    task_count[static_cast<std::size_t>(m.node)]++;
    compute[static_cast<std::size_t>(m.node)] += b.compute;
    shuffle[static_cast<std::size_t>(m.node)] += b.shuffle;
    std::cout << m.task << "  node-" << (m.node + 1) << "  " << format_fixed(b.compute, 2)
              << "  " << format_fixed(b.shuffle, 2) << "  "
              << format_fixed(b.serialization, 2) << "  "
              << format_fixed(b.scheduler_delay, 2) << "\n";
  }

  std::cout << "\nTask distribution: node-1 = " << task_count[0]
            << " tasks, node-2 = " << task_count[1] << " tasks (paper: uneven)\n";
  auto avg = [](double sum, int n) { return n > 0 ? sum / n : 0.0; };
  std::cout << "avg compute: node-1 " << format_fixed(avg(compute[0], task_count[0]), 2)
            << "s vs node-2 " << format_fixed(avg(compute[1], task_count[1]), 2)
            << "s  (node-1's cores are 1.6 GHz vs 2.4 GHz: locality-blind placement\n"
               "   makes compute seconds pile up on the slow node)\n";
  std::cout << "avg shuffle: node-1 " << format_fixed(avg(shuffle[0], task_count[0]), 2)
            << "s vs node-2 " << format_fixed(avg(shuffle[1], task_count[1]), 2)
            << "s  (the shuffle-heavy tasks land by locality, not NIC speed)\n";
  std::cout << "\nPaper shape: tasks in one stage differ widely (up to ~31x); Spark assigns\n"
               "tasks by locality only, so compute-heavy tasks crowd the slow-CPU node and\n"
               "shuffle-heavy tasks the slow-network node, with uneven counts.\n";
  return 0;
}
