// Baseline ladder (supports §II-B2 / §V): FIFO (oblivious) vs default
// Spark (locality-only) vs StageAware (heterogeneity-aware but
// stage-granular, the prior-work assumption the paper critiques) vs
// RUPAM (per-task). The gap between StageAware and RUPAM isolates the
// value of per-task characterization under intra-stage skew.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  bench::print_header("Baselines", "FIFO vs Spark vs stage-level-aware vs RUPAM");

  const std::vector<SchedulerKind> ladder = {SchedulerKind::kFifo, SchedulerKind::kSpark,
                                             SchedulerKind::kStageAware,
                                             SchedulerKind::kRupam};
  bench::JsonReport json("baselines_comparison");

  for (const char* name : {"LR", "PR", "TeraSort"}) {
    std::cout << "\n(" << name << ")\n";
    TextTable table({"Scheduler", "Makespan (s)", "±95% CI", "vs RUPAM"});
    std::map<SchedulerKind, ExperimentResult> results;
    for (SchedulerKind kind : ladder) {
      ExperimentConfig cfg;
      cfg.scheduler = kind;
      cfg.repetitions = reps;
      results.emplace(kind, run_experiment(workload_preset(name), cfg));
      json.record_kernel(results.at(kind).kernel_total());
    }
    double rupam_mean = results.at(SchedulerKind::kRupam).mean_makespan();
    for (SchedulerKind kind : ladder) {
      const ExperimentResult& r = results.at(kind);
      table.add_row({std::string(to_string(kind)), format_fixed(r.mean_makespan(), 1),
                     format_fixed(r.ci95_makespan(), 1),
                     format_fixed(r.mean_makespan() / rupam_mean, 2) + "x"});
      json.add(std::string(name) + "_" + std::string(to_string(kind)) + "_s",
               r.mean_makespan());
    }
    table.print(std::cout);
  }
  json.write();
  std::cout << "\nReading: stage-level awareness helps over locality-only scheduling, but\n"
               "per-task characterization (RUPAM) is needed once tasks within a stage\n"
               "diverge — the paper's central claim.\n";
  return 0;
}
