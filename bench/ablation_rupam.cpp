// Ablation study: flip each RUPAM mechanism off and measure the impact on
// the workload that exercises it most. Not a paper figure — it validates
// that each design choice DESIGN.md calls out actually carries weight.
#include "bench_common.hpp"

namespace {

using namespace rupam;

double run_with(const char* workload, RupamConfig rupam_cfg, bench::JsonReport& json,
                int reps = 2, double res_factor = 2.0) {
  rupam_cfg.res_factor = res_factor;
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.repetitions = reps;
  cfg.sim.rupam = rupam_cfg;
  ExperimentResult r = run_experiment(workload_preset(workload), cfg);
  json.record_kernel(r.kernel_total());
  return r.mean_makespan();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  int reps = argc > 1 ? std::atoi(argv[1]) : 2;
  bench::print_header("Ablation", "RUPAM mechanisms toggled off, one at a time");

  TextTable table({"Variant", "Workload", "Makespan (s)", "vs full RUPAM"});
  RupamConfig full;

  struct Case {
    const char* label;
    const char* workload;
    RupamConfig cfg;
  };
  RupamConfig no_lock = full;
  no_lock.opt_executor_lock = false;
  RupamConfig no_guard = full;
  no_guard.memory_guard = false;
  RupamConfig no_straggler = full;
  no_straggler.memory_straggler = false;
  RupamConfig no_race = full;
  no_race.gpu_cpu_race = false;
  RupamConfig no_overcommit = full;
  no_overcommit.overcommit = false;

  std::vector<Case> cases = {
      {"full RUPAM", "LR", full},
      {"no optexecutor lock", "LR", no_lock},
      {"full RUPAM", "PR", full},
      {"no memory guard", "PR", no_guard},
      {"no memory-straggler relocation", "PR", no_straggler},
      {"full RUPAM", "KMeans", full},
      {"no CPU/GPU dual-run race", "KMeans", no_race},
      {"full RUPAM", "TeraSort", full},
      {"no over-commit (slot semantics)", "TeraSort", no_overcommit},
  };

  bench::JsonReport json("ablation_rupam");
  std::map<std::string, double> baselines;
  for (const auto& c : cases) {
    double makespan = run_with(c.workload, c.cfg, json, reps);
    std::string key = c.workload;
    if (std::string(c.label) == "full RUPAM") baselines[key] = makespan;
    double rel = makespan / baselines[key];
    table.add_row({c.label, c.workload, format_fixed(makespan, 1),
                   format_fixed(rel, 2) + "x"});
    std::string slug = c.label;
    for (char& ch : slug) {
      if (ch == ' ' || ch == '/' || ch == '-' || ch == '(' || ch == ')') ch = '_';
    }
    json.add(key + "_" + slug + "_s", makespan);
  }
  table.print(std::cout);

  // Res_factor sensitivity sweep (Algorithm 1's only tunable).
  std::cout << "\nRes_factor sensitivity (LR):\n";
  TextTable sweep({"Res_factor", "Makespan (s)"});
  for (double rf : {1.2, 1.5, 2.0, 3.0, 4.0}) {
    double makespan = run_with("LR", full, json, reps, rf);
    sweep.add_row({format_number(rf), format_fixed(makespan, 1)});
    json.add("LR_res_factor_" + format_number(rf) + "_s", makespan);
  }
  sweep.print(std::cout);
  json.write();
  std::cout << "\nReading: >1.0x means removing the mechanism slows the workload down.\n";
  return 0;
}
