// Heterogeneity control experiment (not a paper figure, but the paper's
// premise): RUPAM's advantage must come from exploiting hardware
// heterogeneity. On a *homogeneous* cluster with the same aggregate
// resources as Hydra, the Spark-vs-RUPAM gap should largely vanish; as
// heterogeneity grows, it should widen.
#include "bench_common.hpp"
#include "cluster/presets.hpp"

namespace {

using namespace rupam;

// A homogeneous 12-node cluster matching Hydra's aggregate: ~208 cores,
// ~416 GB RAM, mixed-capability averages flattened into identical nodes.
std::vector<NodeSpec> homogeneous_cluster() {
  std::vector<NodeSpec> nodes;
  for (int i = 0; i < 12; ++i) {
    NodeSpec s;
    s.name = "uniform" + std::to_string(i);
    s.node_class = "uniform";
    s.cores = 17;       // ~208 / 12
    s.cpu_ghz = 2.6;
    s.cpu_perf = 1.64;  // aggregate perf-cores / aggregate cores
    s.memory = 34 * kGiB;
    s.net_bandwidth = gbit_per_s(1.0);
    s.has_ssd = false;
    s.disk_read_bw = mib_per_s(275);  // capacity-weighted mean
    s.disk_write_bw = mib_per_s(250);
    s.disk_capacity = 840 * kGiB;
    s.gpus = 0;
    nodes.push_back(std::move(s));
  }
  return nodes;
}

double speedup_on(const std::vector<NodeSpec>& nodes, const char* workload, int reps,
                  bench::JsonReport& json) {
  double spark = 0.0, rupam = 0.0;
  for (auto kind : {SchedulerKind::kSpark, SchedulerKind::kRupam}) {
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.repetitions = reps;
    cfg.sim.nodes = nodes;
    ExperimentResult r = run_experiment(workload_preset(workload), cfg);
    json.record_kernel(r.kernel_total());
    (kind == SchedulerKind::kSpark ? spark : rupam) = r.mean_makespan();
  }
  return spark / rupam;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  int reps = argc > 1 ? std::atoi(argv[1]) : 2;
  bench::print_header("Heterogeneity control",
                      "Spark/RUPAM speedup on homogeneous vs heterogeneous clusters");

  TextTable table({"Workload", "Homogeneous cluster", "Hydra (heterogeneous)"});
  bench::JsonReport json("ablation_heterogeneity");
  bool premise_holds = true;
  for (const char* workload : {"LR", "TeraSort", "PR"}) {
    double homo = speedup_on(homogeneous_cluster(), workload, reps, json);
    double hydra = speedup_on({}, workload, reps, json);  // empty = Hydra preset
    table.add_row({workload, format_fixed(homo, 2) + "x", format_fixed(hydra, 2) + "x"});
    premise_holds = premise_holds && hydra >= homo - 0.15;
    json.add(std::string(workload) + "_homogeneous_speedup", homo);
    json.add(std::string(workload) + "_hydra_speedup", hydra);
  }
  table.print(std::cout);
  json.add("premise_holds", premise_holds ? "yes" : "no");
  json.write();

  std::cout << "\nReading: on identical nodes there is little for heterogeneity-awareness\n"
               "to exploit, so the speedup should shrink toward ~1x; on Hydra it should be\n"
               "substantially larger. Premise holds: " << (premise_holds ? "yes" : "NO")
            << "\n";
  return 0;
}
