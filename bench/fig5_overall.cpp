// Fig 5: overall performance of the studied workloads under default Spark
// and RUPAM — average of 5 runs with 95% confidence intervals, fresh
// DB_task_char per run (the paper's protocol).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  bench::print_header("Fig 5", "Overall performance: execution time, Spark vs RUPAM");

  TextTable table({"Workload", "Spark (s)", "±95% CI", "RUPAM (s)", "±95% CI", "Speedup",
                   "Spark failures", "Spark exec losses"});
  bench::JsonReport json("fig5_overall");
  double speedup_sum = 0.0, improvement_sum = 0.0;
  double multi_iter_sum = 0.0;
  int multi_iter_count = 0;

  for (const auto& preset : table3_workloads()) {
    bench::Comparison c = bench::compare(preset, reps);
    json.add_comparison(preset.name, c);
    std::size_t failures = 0, losses = 0;
    for (const auto& r : c.spark.runs) {
      failures += r.failed_attempts;
      losses += r.executor_losses;
    }
    table.add_row({preset.name, format_fixed(c.spark.mean_makespan(), 1),
                   format_fixed(c.spark.ci95_makespan(), 1),
                   format_fixed(c.rupam.mean_makespan(), 1),
                   format_fixed(c.rupam.ci95_makespan(), 1),
                   format_fixed(c.speedup(), 2) + "x", std::to_string(failures),
                   std::to_string(losses)});
    speedup_sum += c.speedup();
    improvement_sum += 1.0 - 1.0 / c.speedup();
    if (preset.iterations > 1 && preset.name != "SQL") {
      multi_iter_sum += c.speedup();
      ++multi_iter_count;
    }
  }
  table.print(std::cout);

  auto n = static_cast<double>(table3_workloads().size());
  json.add("avg_improvement_pct", improvement_sum / n * 100.0);
  json.add("avg_speedup", speedup_sum / n);
  json.write();
  std::cout << "\nAverage improvement over Spark: "
            << format_fixed(improvement_sum / n * 100.0, 1) << "% (paper: 37.7%)\n"
            << "Average speedup of multi-iteration workloads (LR, PR, TC, KMeans): "
            << format_fixed(multi_iter_sum / multi_iter_count, 2) << "x (paper: ~2.1x)\n"
            << "Paper shape: every workload improves; PR worst-case ~2.5x (memory errors\n"
            << "under Spark), KMeans 2.49x, GM only +1.4% (single iteration), SQL 1.19x,\n"
            << "TeraSort 1.32x.\n";
  return 0;
}
