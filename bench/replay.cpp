// Counterfactual-replay regression gates (DESIGN.md §14).
//
// Sections:
//  * restore  — checkpoint SQL-under-Spark on the Fig 3 motivation pair
//               at half its makespan, restore from the serialized JSON,
//               finish, and require the scheduling-event trace CSV to be
//               byte-identical to the uninterrupted run. Restore must
//               verify every pinned decision.
//  * whatif   — feed the base run's own --analyze diagnosis to the
//               advisor. Gates: the top-ranked finding is the scheduler
//               swap to RUPAM with a positive p95 JCT saving, its
//               motivation is the slow_node_class cause (the paper's Fig 3
//               observation driving its fix), and a node-override
//               candidate for the blamed dispatch is present.
//  * overhead — checkpoint + restore-to-end wall time must stay <= 2x the
//               straight run's wall (replay is re-execution, so ~1x is
//               expected; 2x bounds pin-verification and rebuild costs).
//
// usage: replay  (no arguments; writes BENCH_replay.json)
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "app/run_spec.hpp"
#include "app/simulation.hpp"
#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "metrics/event_trace.hpp"
#include "obs/analyzer.hpp"
#include "replay/checkpoint.hpp"
#include "replay/whatif.hpp"

namespace {

constexpr double kMaxReplayWallShare = 2.0;  // of straight-run wall

/// The paper's Fig 3 motivation pair (examples/motivation_fleet.json):
/// one slow-CPU node, one fast-CPU node behind a 10 Gb/s switch.
rupam::FleetSpec motivation_fleet() {
  return rupam::parse_fleet_json(R"({
    "name": "motivation-pair",
    "seed": 1,
    "switch_gbps": 10,
    "classes": [
      {"name": "slow-cpu", "count": 1, "base": "thor", "cores": 16,
       "cpu_ghz": 1.6, "cpu_perf": 0.67, "memory_gb": 48, "net_gbps": 1,
       "ssd": false},
      {"name": "fast-cpu", "count": 1, "base": "thor", "cores": 16,
       "cpu_ghz": 2.4, "cpu_perf": 1.0, "memory_gb": 48, "net_gbps": 10,
       "ssd": false}
    ]
  })");
}

/// SQL under stock Spark on the pair: the heterogeneity-sensitive run the
/// what-if gate reasons about (RUPAM wins it decisively; see README).
rupam::RunSpec sql_on_pair() {
  rupam::RunSpec spec;
  spec.workload = "SQL";
  spec.workload_explicit = true;
  spec.scheduler = rupam::SchedulerKind::kSpark;
  spec.fleet_spec = motivation_fleet();
  return spec;
}

std::string trace_csv(const rupam::Simulation& sim) {
  std::ostringstream os;
  sim.trace()->write_csv(os);
  return os.str();
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace rupam;
  bench::print_header("Replay", "checkpoint/restore byte-identity, what-if advisor on the "
                                "Fig 3 pair, and replay overhead");
  bench::JsonReport json("replay");
  int failures = 0;

  const RunSpec spec = sql_on_pair();
  SimulationConfig obs_cfg;  // diagnosis needs the full observability set
  obs_cfg.enable_analysis = true;
  obs_cfg.enable_spans = true;
  obs_cfg.enable_trace = true;

  // --- straight run: the reference trace, diagnosis and wall ------------
  double straight_ms = 0.0;
  SimTime makespan = 0.0;
  std::string straight_csv;
  std::string diagnosis_json;
  {
    ReplayRun run = start_replay_run(spec, obs_cfg);
    auto t0 = std::chrono::steady_clock::now();
    makespan = run.sim->finish();
    straight_ms = wall_ms_since(t0);
    json.record_kernel(run.sim->sim().stats());
    straight_csv = trace_csv(*run.sim);
    std::ostringstream diag;
    write_diagnosis_json(analyze_run(run.sim->run_artifacts()), diag);
    diagnosis_json = diag.str();
    json.add("straight_makespan_s", makespan);
    json.add("straight_wall_ms", straight_ms);
    std::cout << "straight: SQL under Spark on the pair, makespan "
              << format_fixed(makespan, 1) << " s (" << format_fixed(straight_ms, 1)
              << " ms wall)\n";
  }

  // --- restore: checkpoint at half-makespan, JSON round-trip, finish ----
  double replay_ms = 0.0;
  {
    auto t0 = std::chrono::steady_clock::now();
    Checkpoint cp = capture_checkpoint(spec, makespan / 2.0);
    Checkpoint restored_cp = parse_checkpoint_json(checkpoint_to_json(cp));
    ReplayRun resumed = restore_checkpoint(restored_cp, obs_cfg);
    SimTime resumed_makespan = resumed.sim->finish();
    replay_ms = wall_ms_since(t0);
    json.record_kernel(resumed.sim->sim().stats());
    bool identical = trace_csv(*resumed.sim) == straight_csv;
    json.add("checkpoint_pins", static_cast<double>(cp.pins.size()));
    json.add("restore_makespan_s", resumed_makespan);
    json.add("restore_trace_identical", identical ? 1.0 : 0.0);
    std::cout << "restore: " << cp.pins.size() << " pinned decisions at t="
              << format_fixed(cp.time, 1) << ", trace "
              << (identical ? "byte-identical" : "DIFFERS") << " vs straight run\n";
    if (!identical) {
      std::cerr << "FAIL: restore-then-finish trace differs from the uninterrupted run\n";
      ++failures;
    }
    if (resumed_makespan != makespan) {
      std::cerr << "FAIL: restored makespan " << resumed_makespan << " != straight "
                << makespan << "\n";
      ++failures;
    }
  }

  // --- whatif: the advisor must rediscover the paper's fix --------------
  {
    std::vector<DiagnosedStraggler> stragglers = parse_diagnosis_stragglers(diagnosis_json);
    WhatIfConfig wcfg;
    wcfg.threads = 2;
    WhatIfReport report = advise_whatif(spec, stragglers, wcfg);
    json.add("whatif_stragglers", static_cast<double>(stragglers.size()));
    json.add("whatif_candidates", static_cast<double>(report.findings.size()));
    std::cout << "whatif: " << stragglers.size() << " stragglers -> "
              << report.findings.size() << " candidates\n";
    for (const WhatIfFinding& f : report.findings) {
      std::cout << "  " << f.branch.label << ": p95 saving "
                << format_fixed(f.p95_jct_saving, 3) << " s (" << f.motivation << ")\n";
    }
    if (report.findings.empty()) {
      std::cerr << "FAIL: advisor produced no candidates\n";
      ++failures;
    } else {
      const WhatIfFinding& top = report.findings.front();
      json.add("whatif_top_p95_saving_s", top.p95_jct_saving);
      bool top_is_rupam = top.branch.label == "scheduler=rupam";
      bool top_blames_slow_class =
          top.motivation.find("slow_node_class") != std::string::npos;
      if (!top_is_rupam || top.p95_jct_saving <= 0.0) {
        std::cerr << "FAIL: top finding is '" << top.branch.label << "' saving "
                  << top.p95_jct_saving << " s; expected scheduler=rupam with a "
                  << "positive p95 JCT saving\n";
        ++failures;
      }
      if (!top_blames_slow_class) {
        std::cerr << "FAIL: top finding's motivation '" << top.motivation
                  << "' does not cite slow_node_class\n";
        ++failures;
      }
      bool has_node_override = false;
      for (const WhatIfFinding& f : report.findings) {
        if (f.branch.kind == BranchKind::kNodeOverride) has_node_override = true;
      }
      json.add("whatif_has_node_override", has_node_override ? 1.0 : 0.0);
      if (!has_node_override) {
        std::cerr << "FAIL: no node-override candidate for the blamed dispatch\n";
        ++failures;
      }
    }
  }

  // --- overhead: checkpoint + restore + finish vs straight --------------
  {
    double share = straight_ms > 0.0 ? replay_ms / straight_ms : 0.0;
    json.add("replay_wall_ms", replay_ms);
    json.add("replay_wall_share", share);
    std::cout << "overhead: checkpoint+restore+finish " << format_fixed(replay_ms, 1)
              << " ms vs straight " << format_fixed(straight_ms, 1) << " ms ("
              << format_fixed(share, 2) << "x)\n";
    if (share > kMaxReplayWallShare) {
      std::cerr << "FAIL: replay wall " << format_fixed(share, 2) << "x straight run > "
                << kMaxReplayWallShare << "x\n";
      ++failures;
    }
  }

  json.write();
  if (failures > 0) return 1;
  std::cout << "\nReading: a checkpoint is just (RunSpec, T, pinned decisions) — restore\n"
               "re-executes and proves it landed on the same run, and the advisor\n"
               "independently rediscovers the paper's conclusion: heterogeneity-aware\n"
               "placement is what the slow-CPU stragglers were asking for.\n";
  return 0;
}
