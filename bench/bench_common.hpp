// Shared helpers for the per-figure/table benchmark harnesses.
#pragma once

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "metrics/experiment.hpp"

namespace rupam::bench {

/// Standard banner: which paper artifact this binary regenerates.
void print_header(const std::string& artifact, const std::string& description);

/// Spark + RUPAM experiment pair on the Hydra cluster with the paper's
/// 5-repetition protocol.
struct Comparison {
  ExperimentResult spark;
  ExperimentResult rupam;
  double speedup() const { return spark.mean_makespan() / rupam.mean_makespan(); }
  /// Kernel counters summed over every run of both experiments.
  KernelStats kernel_total() const;
};

Comparison compare(const WorkloadPreset& preset, int repetitions = 5,
                   int iterations_override = 0, bool sample_utilization = false,
                   bool keep_task_metrics = false, std::uint64_t base_seed = 1);

std::string gb(double bytes);
std::string pct(double fraction);

/// Peak resident set size of this process in MiB (getrusage), 0 if
/// unavailable.
double peak_rss_mib();

/// Machine-readable sidecar next to a bench's stdout tables: a flat
/// key→value JSON object written to BENCH_<name>.json in the working
/// directory, so CI and plotting scripts don't have to scrape tables.
class JsonReport {
 public:
  explicit JsonReport(std::string name);

  void add(const std::string& key, double value);
  void add(const std::string& key, const std::string& value);
  /// Literal JSON booleans (true/false), not 0/1 numbers.
  void add_bool(const std::string& key, bool value);
  /// Records <prefix>_spark_s, <prefix>_rupam_s and <prefix>_speedup, and
  /// folds both experiments' kernel counters into the report footer.
  void add_comparison(const std::string& prefix, const Comparison& c);

  /// Accumulate the kernel counters of a measured Simulation into the
  /// report footer. KernelStats is per-Simulator, so benches record each
  /// run they measure; the footer sums exactly those runs (not unrelated
  /// activity elsewhere in the process).
  void record_kernel(const KernelStats& stats);

  const std::string& path() const { return path_; }
  /// Returns false (and prints to stderr) when the file cannot be written.
  /// Every report is stamped with standard memory fields — peak RSS and the
  /// kernel's event-queue allocation counters — so the BENCH_*.json perf
  /// trajectory captures memory behaviour, not just wall time.
  bool write() const;

 private:
  std::string path_;
  std::vector<std::pair<std::string, std::string>> entries_;  // key → rendered value
  KernelStats kernel_{};  // summed counters of every recorded run
};

}  // namespace rupam::bench
