// Shared helpers for the per-figure/table benchmark harnesses.
#pragma once

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "metrics/experiment.hpp"

namespace rupam::bench {

/// Standard banner: which paper artifact this binary regenerates.
void print_header(const std::string& artifact, const std::string& description);

/// Spark + RUPAM experiment pair on the Hydra cluster with the paper's
/// 5-repetition protocol.
struct Comparison {
  ExperimentResult spark;
  ExperimentResult rupam;
  double speedup() const { return spark.mean_makespan() / rupam.mean_makespan(); }
};

Comparison compare(const WorkloadPreset& preset, int repetitions = 5,
                   int iterations_override = 0, bool sample_utilization = false,
                   bool keep_task_metrics = false, std::uint64_t base_seed = 1);

std::string gb(double bytes);
std::string pct(double fraction);

}  // namespace rupam::bench
