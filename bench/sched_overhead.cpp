// Host wall-clock AND heap-allocation cost of each scheduler's decision
// machinery, measured with the obs/ OverheadProfiler while a full
// transitive-closure run executes on all five schedulers (FIFO, Spark,
// StageAware, HEFT, RUPAM). TC rather than PR because HEFT's
// memory-oblivious EFT placement livelocks on PR's cache-heavy iterations
// (pre-existing, tracked in ROADMAP.md); every scheduler completes TC.
//
// Each scheduler runs the workload twice in separate Simulations: a pilot
// run counts dispatch rounds, then an identical measured run gates heap
// allocations over the second half of those rounds — by then every scratch
// buffer, symbol table and queue has reached its high-water capacity, so
// those rounds are the steady state. Two regression gates (nonzero exit on
// failure):
//
//  * steady-state dispatch rounds that launch nothing must perform ZERO
//    heap allocations with observers (trace/audit/metrics) disabled — the
//    interned-symbol/flat-index dispatch path holds no per-round strings
//    or maps;
//  * RUPAM's mean per-dispatch wall cost must stay within 10x FIFO's
//    (supports the paper's claim that the extra bookkeeping keeps
//    scheduler delay "moderate").
#include <array>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"
#include "obs/overhead.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this process bumps it, so
// "allocations per dispatch round" measures the whole hot path, not just the
// places we remembered to instrument. Single-threaded, so a plain counter.
// ---------------------------------------------------------------------------
namespace {
std::uint64_t g_heap_allocs = 0;
std::uint64_t read_heap_allocs() { return g_heap_allocs; }
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

constexpr double kMaxRupamOverFifo = 10.0;

struct SchedulerProfile {
  explicit SchedulerProfile(rupam::SchedulerKind k) : kind(k) {}

  rupam::SchedulerKind kind;
  rupam::OverheadProfiler profiler;
  std::size_t launches = 0;
  double makespan = 0.0;
  rupam::KernelStats kernel{};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  const char* workload = argc > 1 ? argv[1] : "TC";
  bench::print_header("SchedOverhead",
                      "host-side cost per scheduling decision, all five schedulers");

  std::array<SchedulerProfile, 5> profiles = {
      SchedulerProfile(SchedulerKind::kFifo), SchedulerProfile(SchedulerKind::kSpark),
      SchedulerProfile(SchedulerKind::kStageAware), SchedulerProfile(SchedulerKind::kHeft),
      SchedulerProfile(SchedulerKind::kRupam)};
  for (SchedulerProfile& p : profiles) {
    SimulationConfig cfg;
    cfg.scheduler = p.kind;
    // Pilot: how many dispatch rounds does this workload drive? The
    // measured run replays the identical event sequence, so half of this
    // count marks the start of its steady state.
    std::uint64_t pilot_rounds = 0;
    {
      Simulation pilot(cfg);
      OverheadProfiler pilot_profiler;
      pilot.set_profiler(&pilot_profiler);
      Application app = build_workload(workload_preset(workload), pilot.cluster().node_ids(),
                                       /*seed=*/1, /*iterations_override=*/0,
                                       hdfs_placement_weights(pilot.cluster()));
      pilot.run(app);
      pilot_rounds = pilot_profiler.section(ProfileSection::kDispatch).count;
    }
    // Measured run: wall-clock sections over every round, allocation
    // accounting (sampled around each try_dispatch by the scheduler base)
    // over the post-warm-up half only.
    Simulation sim(cfg);
    sim.set_profiler(&p.profiler);
    Application app = build_workload(workload_preset(workload), sim.cluster().node_ids(),
                                     /*seed=*/1, /*iterations_override=*/0,
                                     hdfs_placement_weights(sim.cluster()));
    p.profiler.set_alloc_counter(&read_heap_allocs);
    p.profiler.set_alloc_warmup(pilot_rounds / 2);
    p.makespan = sim.run(app);
    p.profiler.set_alloc_counter(nullptr);
    p.launches = sim.scheduler().launches();
    p.kernel = sim.sim().stats();
  }

  bench::JsonReport json("sched_overhead");
  TextTable table({"Scheduler", "Dispatch rounds", "Launches", "Dispatch mean (ns)",
                   "Scan allocs", "Launch allocs/round", "Heap maint (ns)", "Heartbeat (ns)"});
  bool scan_alloc_free = true;
  for (SchedulerProfile& p : profiles) {
    json.record_kernel(p.kernel);
    const SectionStats& dispatch = p.profiler.section(ProfileSection::kDispatch);
    const SectionStats& heap = p.profiler.section(ProfileSection::kHeapMaintenance);
    const SectionStats& hb = p.profiler.section(ProfileSection::kHeartbeat);
    const SectionStats& enq = p.profiler.section(ProfileSection::kEnqueue);
    const AllocStats& allocs = p.profiler.alloc_stats();
    table.add_row({std::string(to_string(p.kind)), std::to_string(dispatch.count),
                   std::to_string(p.launches), format_fixed(dispatch.mean_ns(), 0),
                   std::to_string(allocs.scan_allocs),
                   format_fixed(allocs.launch_allocs_per_round(), 2),
                   format_fixed(heap.mean_ns(), 0), format_fixed(hb.mean_ns(), 0)});
    std::string prefix(to_string(p.kind));
    json.add(prefix + "_dispatch_mean_ns", dispatch.mean_ns());
    json.add(prefix + "_dispatch_rounds", static_cast<double>(dispatch.count));
    json.add(prefix + "_dispatch_total_ms", static_cast<double>(dispatch.total_ns) / 1e6);
    json.add(prefix + "_heap_maintenance_mean_ns", heap.mean_ns());
    json.add(prefix + "_heartbeat_mean_ns", hb.mean_ns());
    json.add(prefix + "_enqueue_mean_ns", enq.mean_ns());
    json.add(prefix + "_makespan_s", p.makespan);
    json.add(prefix + "_scan_rounds", static_cast<double>(allocs.scan_rounds));
    json.add(prefix + "_scan_allocs", static_cast<double>(allocs.scan_allocs));
    json.add(prefix + "_allocs_per_dispatch", allocs.scan_allocs_per_round());
    json.add(prefix + "_launch_allocs_per_round", allocs.launch_allocs_per_round());
    if (allocs.scan_allocs != 0) {
      scan_alloc_free = false;
      std::cerr << "FAIL: " << to_string(p.kind) << " allocated " << allocs.scan_allocs
                << " times across " << allocs.scan_rounds
                << " steady-state scan rounds (expected 0 with observers off)\n";
    }
  }
  table.print(std::cout);

  double fifo_mean = profiles[0].profiler.section(ProfileSection::kDispatch).mean_ns();
  double rupam_mean = profiles[4].profiler.section(ProfileSection::kDispatch).mean_ns();
  double ratio = fifo_mean > 0.0 ? rupam_mean / fifo_mean : 0.0;
  json.add("rupam_over_fifo_dispatch_ratio", ratio);
  json.add("steady_scan_allocs_total",
           static_cast<double>(profiles[0].profiler.alloc_stats().scan_allocs +
                               profiles[1].profiler.alloc_stats().scan_allocs +
                               profiles[2].profiler.alloc_stats().scan_allocs +
                               profiles[3].profiler.alloc_stats().scan_allocs +
                               profiles[4].profiler.alloc_stats().scan_allocs));
  json.add("workload", workload);
  json.write();

  std::cout << "\nRUPAM/FIFO mean dispatch cost: " << format_fixed(ratio, 2)
            << "x (budget " << format_fixed(kMaxRupamOverFifo, 0) << "x)\n";
  if (!scan_alloc_free) return 1;
  if (ratio > kMaxRupamOverFifo) {
    std::cerr << "FAIL: RUPAM per-dispatch cost exceeds " << kMaxRupamOverFifo
              << "x FIFO — decision-path regression\n";
    return 1;
  }
  std::cout << "Reading: steady-state dispatch is allocation-free for every scheduler\n"
               "(interned pool/stage symbols + flat indexes + reused scratch), and\n"
               "RUPAM's per-task characterization and heap upkeep stay within an order\n"
               "of magnitude of an oblivious FIFO pop.\n";
  return 0;
}
