// Host wall-clock cost of each scheduler's decision machinery, measured
// with the obs/ OverheadProfiler while a full PageRank run executes.
// Supports the paper's claim that RUPAM's extra bookkeeping keeps
// scheduler delay "moderate": the harness FAILS (nonzero exit) if
// RUPAM's mean per-dispatch cost exceeds 20x FIFO's, so a regression in
// the heap/queue machinery trips CI rather than silently eating the
// simulated gains.
#include <array>

#include "bench_common.hpp"
#include "obs/overhead.hpp"

namespace {

constexpr double kMaxRupamOverFifo = 20.0;

struct SchedulerProfile {
  explicit SchedulerProfile(rupam::SchedulerKind k) : kind(k) {}

  rupam::SchedulerKind kind;
  rupam::OverheadProfiler profiler;
  std::size_t launches = 0;
  std::size_t dispatch_rounds = 0;
  double makespan = 0.0;
  rupam::KernelStats kernel{};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  const char* workload = argc > 1 ? argv[1] : "PR";
  bench::print_header("SchedOverhead",
                      "host-side cost per scheduling decision, all four schedulers");

  std::array<SchedulerProfile, 4> profiles = {
      SchedulerProfile(SchedulerKind::kFifo), SchedulerProfile(SchedulerKind::kSpark),
      SchedulerProfile(SchedulerKind::kStageAware), SchedulerProfile(SchedulerKind::kRupam)};
  for (SchedulerProfile& p : profiles) {
    SimulationConfig cfg;
    cfg.scheduler = p.kind;
    Simulation sim(cfg);
    sim.set_profiler(&p.profiler);
    Application app = build_workload(workload_preset(workload), sim.cluster().node_ids(),
                                     /*seed=*/1, /*iterations_override=*/0,
                                     hdfs_placement_weights(sim.cluster()));
    p.makespan = sim.run(app);
    p.launches = sim.scheduler().launches();
    p.dispatch_rounds = sim.scheduler().dispatch_rounds();
    p.kernel = sim.sim().stats();
  }

  bench::JsonReport json("sched_overhead");
  TextTable table({"Scheduler", "Dispatch rounds", "Launches", "Dispatch mean (ns)",
                   "Heap maint (ns)", "Heartbeat (ns)", "Enqueue (ns)"});
  for (SchedulerProfile& p : profiles) {
    json.record_kernel(p.kernel);
    const SectionStats& dispatch = p.profiler.section(ProfileSection::kDispatch);
    const SectionStats& heap = p.profiler.section(ProfileSection::kHeapMaintenance);
    const SectionStats& hb = p.profiler.section(ProfileSection::kHeartbeat);
    const SectionStats& enq = p.profiler.section(ProfileSection::kEnqueue);
    table.add_row({std::string(to_string(p.kind)), std::to_string(p.dispatch_rounds),
                   std::to_string(p.launches), format_fixed(dispatch.mean_ns(), 0),
                   format_fixed(heap.mean_ns(), 0), format_fixed(hb.mean_ns(), 0),
                   format_fixed(enq.mean_ns(), 0)});
    std::string prefix(to_string(p.kind));
    json.add(prefix + "_dispatch_mean_ns", dispatch.mean_ns());
    json.add(prefix + "_dispatch_rounds", static_cast<double>(dispatch.count));
    json.add(prefix + "_dispatch_total_ms", static_cast<double>(dispatch.total_ns) / 1e6);
    json.add(prefix + "_heap_maintenance_mean_ns", heap.mean_ns());
    json.add(prefix + "_heartbeat_mean_ns", hb.mean_ns());
    json.add(prefix + "_enqueue_mean_ns", enq.mean_ns());
    json.add(prefix + "_makespan_s", p.makespan);
  }
  table.print(std::cout);

  double fifo_mean = profiles[0].profiler.section(ProfileSection::kDispatch).mean_ns();
  double rupam_mean = profiles[3].profiler.section(ProfileSection::kDispatch).mean_ns();
  double ratio = fifo_mean > 0.0 ? rupam_mean / fifo_mean : 0.0;
  json.add("rupam_over_fifo_dispatch_ratio", ratio);
  json.add("workload", workload);
  json.write();

  std::cout << "\nRUPAM/FIFO mean dispatch cost: " << format_fixed(ratio, 2)
            << "x (budget " << format_fixed(kMaxRupamOverFifo, 0) << "x)\n";
  if (ratio > kMaxRupamOverFifo) {
    std::cerr << "FAIL: RUPAM per-dispatch cost exceeds " << kMaxRupamOverFifo
              << "x FIFO — decision-path regression\n";
    return 1;
  }
  std::cout << "Reading: RUPAM pays for per-task characterization and heap upkeep at\n"
               "dispatch time; the budget asserts that cost stays within an order of\n"
               "magnitude-and-change of an oblivious FIFO pop.\n";
  return 0;
}
