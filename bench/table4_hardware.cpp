// Table IV: hardware characteristics benchmarks (SysBench CPU + direct
// I/O, Iperf network) — run against the *simulated* nodes: the probes
// drive the same fair-share resource models the schedulers see.
#include "bench_common.hpp"
#include "cluster/presets.hpp"

namespace {

using namespace rupam;

// SysBench-like CPU test: a fixed amount of compute work split across all
// cores; report wall seconds and per-event latency.
std::pair<double, double> cpu_probe(Simulator& sim, Node& node) {
  constexpr double kWorkPerCore = 8.0;  // ref-core-seconds per core
  SimTime start = sim.now();
  int remaining = node.spec().cores;
  for (int c = 0; c < node.spec().cores; ++c) {
    node.cpu().start(kWorkPerCore, node.spec().core_speed(), [&remaining] { --remaining; });
  }
  sim.run(Simulator::kForever);
  double wall = sim.now() - start;
  double latency_ms = wall / kWorkPerCore * 10.0;  // per-event latency proxy
  return {wall, latency_ms};
}

// Direct-I/O probe: 1 GB sequential read, then write.
std::pair<double, double> io_probe(Simulator& sim, Node& node) {
  SimTime start = sim.now();
  bool done = false;
  node.disk_read().start(1.0 * kGiB, 1.0, [&] { done = true; });
  sim.run(Simulator::kForever);
  double read_mbps = done ? (1024.0 / (sim.now() - start)) : 0.0;
  start = sim.now();
  done = false;
  node.disk_write().start(1.0 * kGiB, 1.0, [&] { done = true; });
  sim.run(Simulator::kForever);
  double write_mbps = done ? (1024.0 / (sim.now() - start)) : 0.0;
  return {read_mbps, write_mbps};
}

// Iperf-like probe: saturate the NIC for one second of payload.
double net_probe(Simulator& sim, Node& node) {
  Bytes payload = node.net().capacity();  // 1 second at line rate
  SimTime start = sim.now();
  node.net().start(payload, 1.0, nullptr);
  sim.run(Simulator::kForever);
  return payload * 8.0 / 1e6 / (sim.now() - start);  // Mbit/s
}

}  // namespace

int main() {
  using namespace rupam;
  bench::print_header("Table IV", "Hardware characteristics benchmarks (SysBench/Iperf-style)");

  TextTable table({"SysBench", "stack", "hulk", "thor"});
  std::vector<std::string> cpu_row{"CPU (sec)/latency (ms)"};
  std::vector<std::string> read_row{"I/O read (MB/s)"};
  std::vector<std::string> write_row{"I/O write (MB/s)"};
  std::vector<std::string> net_row{"Network (Mbit/s)"};

  for (const std::string cls : {"stack", "hulk", "thor"}) {
    Simulator sim;
    Cluster cluster(sim);
    build_hydra(cluster);
    NodeId id = cluster.nodes_of_class(cls).front();
    Node& node = cluster.node(id);
    auto [cpu_s, lat_ms] = cpu_probe(sim, node);
    auto [rd, wr] = io_probe(sim, node);
    double mbit = net_probe(sim, node);
    cpu_row.push_back(format_fixed(cpu_s, 2) + "/" + format_fixed(lat_ms, 2));
    read_row.push_back(format_fixed(rd, 0));
    write_row.push_back(format_fixed(wr, 0));
    net_row.push_back(format_fixed(mbit, 0));
  }
  table.add_row(cpu_row);
  table.add_row(read_row);
  table.add_row(write_row);
  table.add_row(net_row);
  table.print(std::cout);

  std::cout << "\nPaper shape: thor ~5x faster on the CPU test with the lowest latency;\n"
               "hulk slightly better than stack; thor's SSD dominates read/write;\n"
               "network uniform (~940 Mbit/s) because the fabric is 1 GbE.\n";
  return 0;
}
