// Parallel sweep engine scaling + determinism gates.
//
// Runs the same real sweep grid at 1, 2, 4 and hardware_concurrency
// workers and reports simulated events per wall-clock second at each pool
// size. Two regression gates (nonzero exit):
//  * scaling: per-core efficiency at 4 workers — speedup over the 1-thread
//    pool divided by min(4, hardware_concurrency), i.e. by the parallelism
//    the machine can actually deliver — must stay >= 0.6. Simulations
//    share nothing, so anything below that means accidental serialization
//    (a reintroduced process-wide singleton, a hot lock) crept in; the
//    min() keeps the gate meaningful on core-starved CI runners, where 4
//    workers on one core can legitimately never beat 1 worker;
//  * determinism: the 1-thread and N-thread result matrices must be
//    byte-identical JSON — the whole point of derived per-run seeds and
//    preassigned result slots.
//
// usage: sweep [cells_per_scheduler] [replications]
//   Defaults (6, 3) give 12 cells x 3 reps = 36 runs per pool size; the CI
//   smoke runs `sweep 2 2` to stay inside the job budget.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sweep/orchestrator.hpp"

namespace {

constexpr double kMinEfficiencyAt4 = 0.6;

struct PoolResult {
  int threads = 0;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  rupam::KernelStats kernel{};
  std::string json;

  double events_per_s() const { return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0; }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  int cells_per_sched = argc > 1 ? std::atoi(argv[1]) : 6;
  int replications = argc > 2 ? std::atoi(argv[2]) : 3;
  if (cells_per_sched < 1 || replications < 1) {
    std::cerr << "usage: sweep [cells_per_scheduler>=1] [replications>=1]\n";
    return 2;
  }
  bench::print_header("Sweep", "worker-pool scaling and 1-vs-N-thread determinism of the "
                               "parallel sweep engine");

  // A real grid, kept small per cell (short horizon, capped arrivals) so
  // the bench measures pool scaling rather than one giant simulation. The
  // arrival-rate axis is stretched to cells_per_scheduler entries.
  SweepSpec spec;
  spec.name = "bench_sweep";
  spec.base_seed = 11;
  spec.replications = replications;
  spec.schedulers = {SchedulerKind::kSpark, SchedulerKind::kRupam};
  spec.fleet_sizes = {12};
  spec.arrival_rates.clear();
  for (int i = 0; i < cells_per_sched; ++i) {
    spec.arrival_rates.push_back(0.05 + 0.05 * static_cast<double>(i));
  }
  spec.fault_plans = {std::string()};
  spec.duration = 120.0;
  spec.tenants = 2;
  spec.mix = {"TeraSort", "KMeans"};
  spec.max_apps = 3;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> pools = {1, 2, 4};
  if (static_cast<int>(hw) > 4) pools.push_back(static_cast<int>(hw));
  pools.erase(std::unique(pools.begin(), pools.end()), pools.end());

  std::cerr << "[sweep] " << spec.cell_count() << " cells x " << spec.replications
            << " reps = " << spec.total_runs() << " runs per pool size\n";

  std::vector<PoolResult> results;
  for (int threads : pools) {
    SweepOptions opts;
    opts.threads = threads;
    auto t0 = std::chrono::steady_clock::now();
    SweepMatrix matrix = run_sweep(spec, opts);
    auto t1 = std::chrono::steady_clock::now();
    if (matrix.failed_runs() != 0) {
      std::cerr << "FAIL: " << matrix.failed_runs() << " sweep runs failed at " << threads
                << " threads\n";
      return 1;
    }
    PoolResult r;
    r.threads = threads;
    r.wall_s = std::chrono::duration<double>(t1 - t0).count();
    r.kernel = matrix.kernel_total();
    r.events = r.kernel.events_executed;
    r.json = matrix.to_json();
    results.push_back(std::move(r));
  }

  const PoolResult& base = results.front();
  TextTable table({"Workers", "Wall (s)", "Events", "Events/s", "Speedup", "Per-core eff"});
  bench::JsonReport json("sweep");
  double efficiency_at_4 = 1.0;
  for (const PoolResult& r : results) {
    double speedup = base.events_per_s() > 0.0 ? r.events_per_s() / base.events_per_s() : 0.0;
    // Normalize by deliverable parallelism, not the pool size: extra
    // workers beyond the core count cannot add throughput, only overhead.
    int effective_cores = std::min(r.threads, static_cast<int>(hw));
    double efficiency = speedup / static_cast<double>(effective_cores);
    if (r.threads == 4) efficiency_at_4 = efficiency;
    table.add_row({std::to_string(r.threads), format_fixed(r.wall_s, 2),
                   std::to_string(r.events), format_fixed(r.events_per_s(), 0),
                   format_fixed(speedup, 2) + "x", format_fixed(efficiency, 2)});
    std::string prefix = "t" + std::to_string(r.threads);
    json.add(prefix + "_wall_s", r.wall_s);
    json.add(prefix + "_events_per_s", r.events_per_s());
    json.add(prefix + "_speedup", speedup);
    json.add(prefix + "_per_core_efficiency", efficiency);
  }
  table.print(std::cout);

  // Every pool size ran the same grid; record one grid's kernel counters
  // (they are identical across pool sizes by the determinism gate below).
  json.record_kernel(base.kernel);
  json.add("runs_per_pool", static_cast<double>(spec.total_runs()));
  json.add("pool_sizes", static_cast<double>(results.size()));
  json.add("hardware_concurrency", static_cast<double>(hw));
  // Flag runs on core-starved machines (CI shared runners): scaling
  // verdicts from such runs are not comparable against baselines captured
  // on full machines, and the comparator skips them when this is set.
  if (hw < 4) json.add_bool("core_starved", true);
  json.add("min_efficiency_at_4", kMinEfficiencyAt4);
  json.add("efficiency_at_4", efficiency_at_4);

  bool deterministic = true;
  for (const PoolResult& r : results) {
    if (r.json != base.json) {
      std::cerr << "FAIL: matrix JSON at " << r.threads
                << " threads differs from the 1-thread matrix — per-run seeding or result "
                   "slotting is racy\n";
      deterministic = false;
    }
  }
  json.add("deterministic_across_threads", deterministic ? 1.0 : 0.0);
  json.write();

  int failures = deterministic ? 0 : 1;
  bool have_4 = std::any_of(results.begin(), results.end(),
                            [](const PoolResult& r) { return r.threads == 4; });
  if (have_4 && efficiency_at_4 < kMinEfficiencyAt4) {
    std::cerr << "FAIL: per-core efficiency at 4 workers is " << format_fixed(efficiency_at_4, 2)
              << " < " << format_fixed(kMinEfficiencyAt4, 2)
              << " — concurrent simulations are serializing on shared state\n";
    ++failures;
  }
  if (failures > 0) return 1;
  std::cout << "\nReading: simulations share no mutable state, so the worker pool scales\n"
               "near-linearly and the result matrix is byte-identical at every pool size.\n";
  return 0;
}
