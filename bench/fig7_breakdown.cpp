// Fig 7: execution-time breakdown (GC, compute, scheduler delay,
// shuffle-disk, shuffle-net) for LR, SQL and PageRank under both
// schedulers. The paper plots summed task time per category (log scale).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  bench::print_header("Fig 7", "Performance breakdown of LR, SQL, PR (seconds of task time)");

  struct Shape {
    bool lr_gc_better = false;      // LR: RUPAM less GC
    bool sql_gc_worse = false;      // SQL: RUPAM more GC
    bool compute_better = true;     // all: RUPAM less compute time
  } shape;

  for (const char* name : {"LR", "SQL", "PR"}) {
    bench::Comparison c = bench::compare(workload_preset(name), reps);
    Breakdown spark, rupam;
    for (const auto& r : c.spark.runs) {
      spark.gc += r.breakdown.gc;
      spark.compute += r.breakdown.compute;
      spark.scheduler += r.breakdown.scheduler;
      spark.shuffle_disk += r.breakdown.shuffle_disk;
      spark.shuffle_net += r.breakdown.shuffle_net;
    }
    for (const auto& r : c.rupam.runs) {
      rupam.gc += r.breakdown.gc;
      rupam.compute += r.breakdown.compute;
      rupam.scheduler += r.breakdown.scheduler;
      rupam.shuffle_disk += r.breakdown.shuffle_disk;
      rupam.shuffle_net += r.breakdown.shuffle_net;
    }
    double n = static_cast<double>(reps);
    std::cout << "\n(" << name << ")\n";
    TextTable table({"Category", "Spark (s)", "RUPAM (s)"});
    table.add_row({"GC", format_fixed(spark.gc / n, 1), format_fixed(rupam.gc / n, 1)});
    table.add_row(
        {"Compute", format_fixed(spark.compute / n, 1), format_fixed(rupam.compute / n, 1)});
    table.add_row({"Scheduler delay", format_fixed(spark.scheduler / n, 1),
                   format_fixed(rupam.scheduler / n, 1)});
    table.add_row({"Shuffle-disk", format_fixed(spark.shuffle_disk / n, 1),
                   format_fixed(rupam.shuffle_disk / n, 1)});
    table.add_row({"Shuffle-net", format_fixed(spark.shuffle_net / n, 1),
                   format_fixed(rupam.shuffle_net / n, 1)});
    table.print(std::cout);

    if (std::string(name) == "LR") shape.lr_gc_better = rupam.gc < spark.gc;
    if (std::string(name) == "SQL") shape.sql_gc_worse = rupam.gc > spark.gc * 0.9;
    shape.compute_better = shape.compute_better && rupam.compute < spark.compute * 1.25;
  }

  std::cout << "\nPaper shape checks:\n"
            << "  LR GC lower under RUPAM (bigger cache, fewer LRU evictions): "
            << (shape.lr_gc_better ? "yes" : "NO") << "\n"
            << "  SQL GC comparable-or-higher under RUPAM (full-heap scans): "
            << (shape.sql_gc_worse ? "yes" : "NO") << "\n"
            << "  Compute time improved or comparable under RUPAM: "
            << (shape.compute_better ? "yes" : "NO") << "\n"
            << "  Scheduler delay moderate despite the extra bookkeeping (see table).\n";
  return 0;
}
