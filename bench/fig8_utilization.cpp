// Fig 8: average system utilization of the cluster nodes while running
// LR, SQL and PageRank under both schedulers: CPU user %, memory used GB,
// network MB/s, disk KB/s.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rupam;
  int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  bench::print_header("Fig 8", "Average node utilization for LR, SQL, PR");

  TextTable table({"Workload", "Sched", "CPU user (%)", "Memory (GB)", "Network (MB/s)",
                   "Disk (KB/s)"});
  int cpu_shape = 0, mem_shape = 0;
  for (const char* name : {"LR", "SQL", "PR"}) {
    bench::Comparison c = bench::compare(workload_preset(name), reps, 0,
                                         /*sample_utilization=*/true);
    auto add = [&](const ExperimentResult& r, const char* sched) {
      double cpu = 0.0, mem = 0.0, net = 0.0, disk = 0.0;
      for (const auto& run : r.runs) {
        cpu += run.avg_cpu_util;
        mem += run.avg_memory_used;
        net += run.avg_net_rate;
        disk += run.avg_disk_rate;
      }
      double n = static_cast<double>(r.runs.size());
      table.add_row({name, sched, bench::pct(cpu / n), format_fixed(mem / n / kGiB, 1),
                     format_fixed(net / n / kMiB, 1), format_fixed(disk / n / kKiB, 0)});
      return std::pair{cpu / n, mem / n};
    };
    auto [spark_cpu, spark_mem] = add(c.spark, "Spark");
    auto [rupam_cpu, rupam_mem] = add(c.rupam, "RUPAM");
    cpu_shape += rupam_cpu <= spark_cpu * 1.05;
    mem_shape += rupam_mem >= spark_mem;
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: RUPAM shows lower average CPU (and network/disk) utilization\n"
               "— balanced load, less contention — but HIGHER memory usage (executors\n"
               "sized to each node's capacity instead of the weakest node's).\n"
            << "[shape] CPU lower-or-equal under RUPAM: " << cpu_shape
            << "/3; memory higher under RUPAM: " << mem_shape << "/3\n";
  return 0;
}
