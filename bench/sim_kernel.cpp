// Simulation-kernel microbenchmark + regression gates.
//
// Sections:
//  * churn    — a fair-share-like cancel/repush workload run on BOTH the
//               live kernel and `LegacySimulator`, a faithful copy of the
//               pre-overhaul kernel (std::priority_queue of events, one
//               shared_ptr handle state + std::function per event, cancel
//               via tombstones). Gate: live kernel >= kMinSpeedup x the
//               legacy events/sec.
//  * steady   — the same churn after warmup with allocation counters reset;
//               gate: near-zero heap allocations per executed event (event
//               arena reuses slots, callbacks stay in the SBO buffer).
//  * periodic — a PeriodicTaskSet with N members must occupy exactly ONE
//               kernel queue entry (vs N self-rescheduling timers).
//  * e2e      — an end-to-end generated-fleet TeraSort run (scale_fleet's
//               config) pinning kernel wall time and events/sec at fleet
//               scale in BENCH_sim_kernel.json.
//
// usage: sim_kernel [fleet_nodes] [churn_ticks]
//   CI smoke runs `sim_kernel 100 50000`; defaults are 1000 / 400000.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "simcore/kernel_stats.hpp"
#include "simcore/periodic.hpp"
#include "simcore/simulator.hpp"
#include "workloads/presets.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this process bumps it, so
// "allocations per executed event" measures the whole hot path, not just the
// places we remembered to instrument. Single-threaded, so a plain counter.
// ---------------------------------------------------------------------------
namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using rupam::SimTime;

constexpr double kMinSpeedup = 2.0;
constexpr double kMaxSteadyAllocsPerEvent = 0.02;

// ---------------------------------------------------------------------------
// LegacySimulator: the pre-overhaul kernel, verbatim except for the names
// and a queue-size probe. Kept here (not in src/) so the shipped kernel has
// exactly one implementation; this copy exists only as the bench baseline.
// ---------------------------------------------------------------------------
class LegacySimulator;

class LegacyHandle {
 public:
  LegacyHandle() = default;

  void cancel() {
    if (state_) state_->cancelled = true;
  }
  bool pending() const { return state_ && !state_->cancelled && !state_->fired; }

 private:
  friend class LegacySimulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit LegacyHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class LegacySimulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  LegacyHandle schedule_at(SimTime when, Callback fn) {
    auto state = std::make_shared<LegacyHandle::State>();
    queue_.push(Event{when, next_seq_++, std::move(fn), state});
    if (queue_.size() > peak_queue_) peak_queue_ = queue_.size();
    return LegacyHandle(std::move(state));
  }
  LegacyHandle schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (ev.state->cancelled) continue;
      now_ = ev.time;
      ev.state->fired = true;
      ++executed_;
      ev.fn();
      return true;
    }
    return false;
  }

  std::size_t run() {
    std::size_t count = 0;
    while (step()) ++count;
    return count;
  }

  std::size_t executed_events() const { return executed_; }
  std::size_t peak_queue() const { return peak_queue_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<LegacyHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t peak_queue_ = 0;
};

// ---------------------------------------------------------------------------
// Churn workload: R contended "resources", each with one pending completion
// event. Every tick is a dispatch round that hits several resources, and a
// fair-share transition cancels the resource's (typically far-future)
// completion and re-pushes it. A completion therefore gets rescheduled many
// times before it ever fires — exactly the pattern FairShareResource
// inflicts on the queue at fleet scale, and the pattern that makes the
// legacy kernel accumulate tombstones (a cancelled far-future event squats
// in the priority_queue until its time arrives). Identical deterministic
// sequence on both kernels.
// ---------------------------------------------------------------------------
constexpr std::size_t kTransitionsPerTick = 8;

template <typename Sim, typename Handle>
class Churn {
 public:
  Churn(Sim& sim, std::size_t resources, std::size_t ticks)
      : sim_(sim), completion_(resources), ticks_left_(ticks) {}

  void seed(std::size_t chains) {
    for (std::size_t r = 0; r < completion_.size(); ++r) arm_completion(r);
    for (std::size_t c = 0; c < chains; ++c) {
      sim_.schedule_after(0.25 + 0.01 * static_cast<double>(c), [this] { tick(); });
    }
  }

 private:
  std::uint64_t rnd() {
    rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
    return rng_ >> 33;
  }

  void arm_completion(std::size_t r) {
    // Completions land far out: contended resources drain slowly, and every
    // transition pushes the ETA around long before it is reached.
    double eta = 20.0 + 0.1 * static_cast<double>(rnd() % 1000);
    completion_[r] = sim_.schedule_after(eta, [this, r] {
      if (ticks_left_ > 0) arm_completion(r);
    });
  }

  void tick() {
    if (ticks_left_ == 0) return;
    --ticks_left_;
    for (std::size_t i = 0; i < kTransitionsPerTick; ++i) {
      std::size_t r = rnd() % completion_.size();
      completion_[r].cancel();  // legacy: tombstone; live: true removal
      arm_completion(r);
    }
    sim_.schedule_after(0.05 + 0.001 * static_cast<double>(rnd() % 100), [this] { tick(); });
  }

  Sim& sim_;
  std::vector<Handle> completion_;
  std::uint64_t rng_ = 0x243F6A8885A308D3ull;
  std::size_t ticks_left_;
};

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  int fleet_nodes = argc > 1 ? std::atoi(argv[1]) : 1000;
  std::size_t churn_ticks = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 400000;
  if (fleet_nodes < 12 || churn_ticks < 1000) {
    std::cerr << "usage: sim_kernel [fleet_nodes>=12] [churn_ticks>=1000]\n";
    return 2;
  }
  bench::print_header("SimKernel", "event-queue throughput, allocations/event and fleet-scale "
                                   "kernel wall time");
  bench::JsonReport json("sim_kernel");
  constexpr std::size_t kResources = 256;
  constexpr std::size_t kChains = 64;
  int failures = 0;

  // --- churn: legacy vs live kernel -------------------------------------
  double legacy_eps = 0.0;
  double live_eps = 0.0;
  std::size_t legacy_peak = 0;
  std::size_t live_peak = 0;
  {
    LegacySimulator sim;
    Churn<LegacySimulator, LegacyHandle> churn(sim, kResources, churn_ticks);
    churn.seed(kChains);
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    double ms = wall_ms_since(t0);
    legacy_eps = static_cast<double>(sim.executed_events()) / (ms / 1000.0);
    legacy_peak = sim.peak_queue();
    json.add("churn_legacy_wall_ms", ms);
    json.add("churn_legacy_events", static_cast<double>(sim.executed_events()));
    json.add("churn_legacy_events_per_s", legacy_eps);
    json.add("churn_legacy_peak_queue", static_cast<double>(legacy_peak));
  }
  {
    Simulator sim;
    Churn<Simulator, EventHandle> churn(sim, kResources, churn_ticks);
    churn.seed(kChains);
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    double ms = wall_ms_since(t0);
    live_eps = static_cast<double>(sim.executed_events()) / (ms / 1000.0);
    live_peak = sim.peak_pending_events();
    json.record_kernel(sim.stats());
    json.add("churn_wall_ms", ms);
    json.add("churn_events", static_cast<double>(sim.executed_events()));
    json.add("churn_events_per_s", live_eps);
    json.add("churn_peak_queue", static_cast<double>(live_peak));
  }
  double speedup = legacy_eps > 0.0 ? live_eps / legacy_eps : 0.0;
  json.add("churn_ticks", static_cast<double>(churn_ticks));
  json.add("churn_speedup_vs_legacy", speedup);
  std::cout << "churn: live " << format_fixed(live_eps / 1e6, 2) << "M ev/s vs legacy "
            << format_fixed(legacy_eps / 1e6, 2) << "M ev/s (" << format_fixed(speedup, 2)
            << "x), peak queue " << live_peak << " vs " << legacy_peak << " (tombstones)\n";
  if (speedup < kMinSpeedup) {
    std::cerr << "FAIL: churn speedup " << format_fixed(speedup, 2) << "x < "
              << format_fixed(kMinSpeedup, 1) << "x vs the pre-overhaul kernel\n";
    ++failures;
  }

  // --- steady state: allocations per executed event ---------------------
  {
    Simulator sim;
    // Warmup grows the arena to the workload's high-watermark...
    Churn<Simulator, EventHandle> warmup(sim, kResources, churn_ticks / 4);
    warmup.seed(kChains);
    sim.run();
    // ...after which the same churn must run allocation-free.
    Churn<Simulator, EventHandle> measured(sim, kResources, churn_ticks / 4);
    measured.seed(kChains);
    std::size_t before_events = sim.executed_events();
    std::uint64_t before_allocs = g_heap_allocs;
    sim.run();
    std::uint64_t allocs = g_heap_allocs - before_allocs;
    std::size_t events = sim.executed_events() - before_events;
    double per_event = events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
    json.record_kernel(sim.stats());
    json.add("steady_events", static_cast<double>(events));
    json.add("steady_heap_allocs", static_cast<double>(allocs));
    json.add("steady_allocs_per_event", per_event);
    std::cout << "steady: " << allocs << " heap allocations over " << events << " events ("
              << format_fixed(per_event, 4) << "/event)\n";
    if (per_event > kMaxSteadyAllocsPerEvent) {
      std::cerr << "FAIL: steady-state " << format_fixed(per_event, 4)
                << " allocations/event > " << format_fixed(kMaxSteadyAllocsPerEvent, 2)
                << " — the event hot path is touching the allocator again\n";
      ++failures;
    }
  }

  // --- periodic: N member timers, one queue entry -----------------------
  {
    Simulator sim;
    PeriodicTaskSet timers(sim, 1.0);
    std::size_t beats = 0;
    const std::size_t members = static_cast<std::size_t>(fleet_nodes);
    for (std::size_t i = 0; i < members; ++i) {
      timers.add(static_cast<double>(i) / static_cast<double>(members), [&beats] { ++beats; });
    }
    timers.start();
    sim.run(10.0);
    json.record_kernel(sim.stats());
    json.add("periodic_members", static_cast<double>(members));
    json.add("periodic_queue_entries", static_cast<double>(timers.queue_entries()));
    json.add("periodic_beats", static_cast<double>(beats));
    std::cout << "periodic: " << members << " member timers in " << timers.queue_entries()
              << " queue entry (" << beats << " firings over 10 periods)\n";
    if (timers.queue_entries() != 1) {
      std::cerr << "FAIL: periodic task set occupies " << timers.queue_entries()
                << " queue entries (want 1)\n";
      ++failures;
    }
  }

  // --- e2e: generated fleet, kernel wall time ---------------------------
  {
    FleetSpec spec = fleet_nodes == 12 ? hydra_fleet_spec()
                                       : scaled_hydra_fleet(fleet_nodes, /*seed=*/1);
    WorkloadPreset preset = workload_preset("TeraSort");
    preset.input_gb = 0.5 * static_cast<double>(fleet_nodes);
    SimulationConfig cfg;
    cfg.scheduler = SchedulerKind::kRupam;
    cfg.nodes = generate_fleet(spec);
    if (spec.switch_bandwidth > 0.0) cfg.switch_bandwidth = spec.switch_bandwidth;
    cfg.speculation.enabled = false;
    Simulation sim(cfg);
    Application app = build_workload(preset, sim.cluster().node_ids(), /*seed=*/1,
                                     /*iterations_override=*/0,
                                     hdfs_placement_weights(sim.cluster()));
    std::cerr << "[sim_kernel] e2e fleet N=" << fleet_nodes << " ...\n";
    auto t0 = std::chrono::steady_clock::now();
    double makespan = sim.run(app);
    double ms = wall_ms_since(t0);
    std::size_t events = sim.sim().executed_events();
    double eps = ms > 0.0 ? static_cast<double>(events) / (ms / 1000.0) : 0.0;
    json.record_kernel(sim.sim().stats());
    json.add("e2e_nodes", static_cast<double>(fleet_nodes));
    json.add("e2e_makespan_s", makespan);
    json.add("e2e_kernel_wall_ms", ms);
    json.add("e2e_events", static_cast<double>(events));
    json.add("e2e_events_per_s", eps);
    json.add("e2e_peak_queue", static_cast<double>(sim.sim().peak_pending_events()));
    std::cout << "e2e: N=" << fleet_nodes << " finished in " << format_fixed(ms, 1) << " ms ("
              << format_fixed(eps / 1e6, 2) << "M ev/s, peak queue "
              << sim.sim().peak_pending_events() << ")\n";
  }

  json.write();
  if (failures > 0) return 1;
  std::cout << "\nReading: true cancel keeps the heap free of tombstones under churn, the\n"
               "arena + inline callbacks keep steady state allocation-free, and periodic\n"
               "timers cost one queue entry per set — events/sec is the throughput metric\n"
               "that bounds every fleet-scale experiment above this layer.\n";
  return 0;
}
