// Fleet-scale dispatch sweep: generated Hydra-ratio clusters at N = 12,
// 100, 500 and 1000 nodes, all four schedulers, TeraSort scaled so the
// per-node task pressure stays constant (~4 tasks/node/wave). TeraSort
// because its per-task memory is modest: memory-drama workloads (PR) are
// deliberately unschedulable-adjacent on the memory-oblivious baselines,
// and at fleet scale that turns into an OOM live-lock instead of the
// paper's "Spark is slower" — the wrong failure mode for a dispatch-cost
// bench.
//
// Two regression gates (nonzero exit):
//  * wall-clock: every run must finish within the per-run budget — a
//    superlinear dispatch path reappears here long before CI times out;
//  * work counters: at the largest swept N, the indexed dispatch paths
//    must examine at least 10x fewer tasks than a full nodes-x-tasks
//    rescan per round would (DispatchWorkCounters.full_scan_equivalent /
//    task_checks >= 10).
//
// Speculation is disabled for the sweep: its straggler scan is a separate
// subsystem with its own (per-stage) cost model, and leaving it on would
// blur what the dispatch indexes are being measured for.
//
// usage: scale_fleet [max_nodes] [per_run_budget_s]
//   CI smoke runs `scale_fleet 100`; the full sweep is the default.
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "simcore/kernel_stats.hpp"
#include "workloads/presets.hpp"

namespace {

constexpr double kMinScanReduction = 10.0;

struct RunResult {
  int nodes = 0;
  std::string scheduler;
  double makespan = 0.0;
  double wall_ms = 0.0;  // kernel wall time: wraps sim.run() only
  std::size_t events = 0;
  std::size_t launches = 0;
  std::size_t peak_queue = 0;
  std::uint64_t queue_allocs = 0;  // arena growth + callback SBO misses
  rupam::KernelStats kernel{};     // this run's Simulator counters
  rupam::SchedulerBase::DispatchWorkCounters work;

  double scan_reduction() const {
    return static_cast<double>(work.full_scan_equivalent) /
           static_cast<double>(std::max<std::size_t>(1, work.task_checks));
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  int max_nodes = argc > 1 ? std::atoi(argv[1]) : 1000;
  double budget_s = argc > 2 ? std::atof(argv[2]) : 60.0;
  if (max_nodes < 12 || budget_s <= 0.0) {
    std::cerr << "usage: scale_fleet [max_nodes>=12] [per_run_budget_s>0]\n";
    return 2;
  }
  bench::print_header("ScaleFleet",
                      "dispatch cost on generated fleets up to " + std::to_string(max_nodes) +
                          " nodes, all four schedulers");

  const std::vector<int> sweep = {12, 100, 500, 1000};
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kFifo, SchedulerKind::kSpark,
                                            SchedulerKind::kStageAware, SchedulerKind::kRupam};
  const WorkloadPreset base_preset = workload_preset("TeraSort");

  std::vector<RunResult> results;
  int largest = 0;
  bool over_budget = false;
  for (int n : sweep) {
    if (n > max_nodes) continue;
    largest = n;
    // Hydra itself at 12 nodes (byte-identical to the preset); the 6:4:2
    // class ratio with mild jitter beyond.
    FleetSpec spec = n == 12 ? hydra_fleet_spec() : scaled_hydra_fleet(n, /*seed=*/1);
    std::vector<NodeSpec> fleet_nodes = generate_fleet(spec);
    // Constant per-node pressure: TeraSort builds 8 map + 8 reduce tasks
    // per input GB, so 0.5 GB/node keeps ~4 tasks/node/wave at every N.
    WorkloadPreset preset = base_preset;
    preset.input_gb = 0.5 * static_cast<double>(n);

    for (SchedulerKind kind : kinds) {
      SimulationConfig cfg;
      cfg.scheduler = kind;
      cfg.nodes = fleet_nodes;
      if (spec.switch_bandwidth > 0.0) cfg.switch_bandwidth = spec.switch_bandwidth;
      cfg.speculation.enabled = false;
      Simulation sim(cfg);
      Application app =
          build_workload(preset, sim.cluster().node_ids(), /*seed=*/1,
                         /*iterations_override=*/0, hdfs_placement_weights(sim.cluster()));

      std::cerr << "[scale_fleet] N=" << n << " " << sim.scheduler().name() << " ...\n";
      auto t0 = std::chrono::steady_clock::now();
      RunResult r;
      r.makespan = sim.run(app);
      auto t1 = std::chrono::steady_clock::now();
      r.kernel = sim.sim().stats();
      r.nodes = n;
      r.scheduler = sim.scheduler().name();
      r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      r.events = sim.sim().executed_events();
      r.peak_queue = sim.sim().peak_pending_events();
      r.queue_allocs = r.kernel.arena_slot_allocs + r.kernel.callback_heap_allocs;
      r.launches = sim.scheduler().launches();
      r.work = sim.scheduler().dispatch_work();
      if (r.wall_ms > budget_s * 1000.0) over_budget = true;
      results.push_back(r);
    }
  }

  TextTable table({"Nodes", "Scheduler", "Makespan (s)", "Wall (ms)", "Events", "Events/s",
                   "Task checks", "Full-scan equiv", "Reduction"});
  bench::JsonReport json("scale_fleet");
  for (const RunResult& r : results) {
    json.record_kernel(r.kernel);
    double events_per_s =
        r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0) : 0.0;
    table.add_row({std::to_string(r.nodes), r.scheduler, format_fixed(r.makespan, 1),
                   format_fixed(r.wall_ms, 1), std::to_string(r.events),
                   format_fixed(events_per_s, 0), std::to_string(r.work.task_checks),
                   std::to_string(r.work.full_scan_equivalent),
                   format_fixed(r.scan_reduction(), 1) + "x"});
    std::string prefix = "n" + std::to_string(r.nodes) + "_" + r.scheduler;
    json.add(prefix + "_wall_ms", r.wall_ms);
    json.add(prefix + "_peak_queue", static_cast<double>(r.peak_queue));
    json.add(prefix + "_queue_allocs_per_event",
             r.events > 0 ? static_cast<double>(r.queue_allocs) / static_cast<double>(r.events)
                          : 0.0);
    json.add(prefix + "_makespan_s", r.makespan);
    json.add(prefix + "_events_per_s", events_per_s);
    json.add(prefix + "_launches", static_cast<double>(r.launches));
    json.add(prefix + "_task_checks", static_cast<double>(r.work.task_checks));
    json.add(prefix + "_full_scan_equivalent", static_cast<double>(r.work.full_scan_equivalent));
    json.add(prefix + "_scan_reduction", r.scan_reduction());
  }
  table.print(std::cout);
  json.add("max_nodes_swept", static_cast<double>(largest));
  json.add("per_run_budget_s", budget_s);
  json.write();

  int failures = 0;
  if (over_budget) {
    std::cerr << "FAIL: at least one run exceeded the " << budget_s
              << "s wall-clock budget — dispatch cost is growing superlinearly\n";
    ++failures;
  }
  for (const RunResult& r : results) {
    if (r.nodes != largest) continue;
    if (r.scan_reduction() < kMinScanReduction) {
      std::cerr << "FAIL: " << r.scheduler << " at " << largest << " nodes examined "
                << r.work.task_checks << " tasks vs " << r.work.full_scan_equivalent
                << " for a full rescan (" << format_fixed(r.scan_reduction(), 1) << "x < "
                << format_fixed(kMinScanReduction, 0)
                << "x) — the dispatch indexes are not being used\n";
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::cout << "\nReading: per-offer work is bounded by the indexed candidate sets, so\n"
               "events/s stays flat as the fleet grows instead of collapsing with\n"
               "O(nodes x tasks) rescans per dispatch round.\n";
  return 0;
}
