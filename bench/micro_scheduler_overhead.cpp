// Microbenchmarks (google-benchmark): per-decision cost of the scheduler
// machinery. Supports the paper's claim that despite the extra
// bookkeeping "the resulting scheduler delay under RUPAM is moderate".
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sched/rupam/dispatcher.hpp"
#include "sched/rupam/resource_monitor.hpp"
#include "sched/rupam/task_char_db.hpp"
#include "sched/rupam/task_manager.hpp"
#include "sched/speculation.hpp"

namespace {

using namespace rupam;

void BM_Algorithm1Classify(benchmark::State& state) {
  TaskCharDb db;
  TaskManager tm(db);
  TaskMetrics m;
  m.compute_time = 12.0;
  m.shuffle_read_time = 3.0;
  m.shuffle_write_time = 1.0;
  for (int p = 0; p < 512; ++p) db.update("stage", p, m, ResourceKind::kCpu);
  TaskSpec t;
  t.stage_name = "stage";
  int p = 0;
  for (auto _ : state) {
    t.partition = p++ & 511;
    benchmark::DoNotOptimize(tm.classify(t));
  }
}
BENCHMARK(BM_Algorithm1Classify);

void BM_Algorithm2Select(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<DispatchTaskView> views;
  for (std::size_t i = 0; i < n; ++i) {
    DispatchTaskView v;
    v.index = i;
    v.peak_memory = rng.uniform(64e6, 2e9);
    v.locality = static_cast<Locality>(rng.uniform_index(4));
    v.opt_executor = static_cast<NodeId>(rng.uniform_index(12));
    v.history_size = rng.uniform_index(6);
    v.expected_cost = rng.uniform(1.0, 100.0);
    views.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm2_select(views, 3, 8e9));
  }
}
BENCHMARK(BM_Algorithm2Select)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ResourceMonitorRanked(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  ResourceMonitor rm;
  Rng rng(3);
  for (NodeId i = 0; i < n; ++i) {
    NodeMetrics m;
    m.node = i;
    m.cpu_perf = rng.uniform(1.0, 4.0);
    m.cores = 8;
    m.cpu_util = rng.uniform();
    m.free_memory = rng.uniform(1e9, 64e9);
    rm.record(m);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm.ranked(ResourceKind::kCpu, nullptr));
  }
}
BENCHMARK(BM_ResourceMonitorRanked)->Arg(12)->Arg(64)->Arg(256);

void BM_TaskCharDbUpdate(benchmark::State& state) {
  TaskCharDb db;
  TaskMetrics m;
  m.compute_time = 10.0;
  m.finish_time = 12.0;
  int p = 0;
  for (auto _ : state) {
    db.update("stage", p++ & 1023, m, ResourceKind::kCpu);
  }
}
BENCHMARK(BM_TaskCharDbUpdate);

void BM_StragglerThreshold(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> runtimes;
  for (int i = 0; i < 400; ++i) runtimes.push_back(rng.uniform(5.0, 50.0));
  SpeculationRule rule;
  for (auto _ : state) {
    benchmark::DoNotOptimize(straggler_threshold(runtimes, 512, rule));
  }
}
BENCHMARK(BM_StragglerThreshold);

}  // namespace

BENCHMARK_MAIN();
