// Fig 2: system resource utilization while multiplying two 4K x 4K
// matrices (the §II-B motivational study). Prints the CPU / memory /
// network / disk time series sampled once per simulated second.
#include "app/simulation.hpp"
#include "bench_common.hpp"

int main() {
  using namespace rupam;
  bench::print_header("Fig 2", "Resource utilization under 4K x 4K matrix multiplication");

  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.nodes = {};  // Hydra; the paper used its 2-node testbed, same shape
  cfg.sample_utilization = true;
  cfg.sample_period = 1.0;
  Simulation sim(cfg);

  WorkloadParams params;
  params.input_gb = 0.125;  // 4Kx4K doubles = 128 MiB per matrix
  params.seed = 1;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  Application app = make_matmul(sim.cluster().node_ids(), params);
  SimTime makespan = sim.run(app);
  const UtilizationSampler* sampler = sim.sampler();

  std::cout << "makespan: " << format_fixed(makespan, 1) << " s\n\n";
  std::cout << "t(s)  cpu(%)  mem(GB)  net(MB/s)  disk(MB/s)\n";
  auto horizon = makespan;
  auto n = sim.cluster().size();
  auto cpu = sampler->cpu_series(horizon);
  std::vector<std::vector<double>> mem, net, disk;
  for (NodeId id : sim.cluster().node_ids()) {
    mem.push_back(sampler->memory_used(id).resample(1.0, horizon));
    net.push_back(sampler->net_rate(id).resample(1.0, horizon));
    disk.push_back(sampler->disk_rate(id).resample(1.0, horizon));
  }
  std::size_t buckets = cpu[0].size();
  std::size_t cpu_peak_t = 0, net_peak_t = 0;
  double cpu_peak = 0.0, net_peak = 0.0, net_first = 0.0, net_mid = 0.0, net_last = 0.0;
  for (std::size_t t = 0; t < buckets; ++t) {
    double c = 0.0, m = 0.0, nn = 0.0, d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      c += cpu[i][t];
      m += mem[i][t];
      nn += net[i][t];
      d += disk[i][t];
    }
    c = c / static_cast<double>(n) * 100.0;
    std::cout << t << "  " << format_fixed(c, 1) << "  " << format_fixed(m / kGiB, 1) << "  "
              << format_fixed(nn / kMiB, 1) << "  " << format_fixed(d / kMiB, 1) << "\n";
    if (c > cpu_peak) cpu_peak = c, cpu_peak_t = t;
    if (nn > net_peak) net_peak = nn, net_peak_t = t;
    if (t < buckets / 4) net_first += nn;
    if (t >= buckets / 4 && t < 3 * buckets / 4) net_mid += nn;
    if (t >= 3 * buckets / 4) net_last += nn;
  }

  std::cout << "\nPaper shape: CPU spikes at the start (partitioning) and is highest in the\n"
               "final multiply stages; memory stays high with an initial slope; the network\n"
               "shows spikes at the beginning and end (shuffle/reduce); disk writes visible\n"
               "at shuffles, reads low.\n";
  std::cout << "[shape] CPU peaks in the multiply phase at t=" << cpu_peak_t << "/" << buckets
            << " ("  << format_fixed(cpu_peak, 0) << "%); network peak at t=" << net_peak_t
            << "; edge-vs-middle network ratio: "
            << format_fixed((net_first + net_last) / std::max(1.0, 2.0 * net_mid), 2) << "\n";
  return 0;
}
