// Multi-tenant scheduling bench (not a paper figure — the paper runs one
// application at a time; this exercises the PR-2 scheduling core): N tenant
// pools submit short jobs open-loop (Poisson arrivals) while one long
// TeraSort batch job hogs the cluster from t=0. Compares short-job JCT
// under FIFO vs FAIR cross-job policies and under RUPAM with FAIR pools,
// against a no-batch-job baseline. The headline check: FAIR pulls the
// short jobs' p95 JCT well below FIFO's, because FIFO makes every later
// job queue behind the batch job's tasksets.
#include <optional>

#include "app/simulation.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"

namespace {

using namespace rupam;

struct Scenario {
  // Horizon x rate keeps the open loop stable: past ~200 s at this rate the
  // short jobs saturate the cluster by themselves and the batch job's share
  // stops being the dominant term in their queueing.
  SimTime duration = 200.0;  // arrival horizon for the short jobs
  double rate = 0.04;        // short-job apps per second
  int tenants = 3;
  std::uint64_t seed = 1;
};

struct VariantResult {
  std::size_t short_jobs = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double queueing = 0.0;
  SimTime makespan = 0.0;
  KernelStats kernel{};
};

VariantResult run_variant(const Scenario& sc, SchedulerKind kind, PoolPolicy policy,
                          bool with_batch) {
  SimulationConfig cfg;
  cfg.scheduler = kind;
  cfg.seed = sc.seed;
  cfg.pools.policy = policy;
  Simulation sim(cfg);

  SubmissionStream stream;
  if (with_batch) {
    // Added first: under FIFO the batch job takes the lowest job ids, i.e.
    // strict priority over every later arrival — the regime FAIR fixes.
    stream.add(0.0,
               build_workload(workload_preset("TeraSort"), sim.cluster().node_ids(), sc.seed),
               "batch");
  }
  ArrivalConfig arrivals;
  arrivals.rate = sc.rate;
  arrivals.duration = sc.duration;
  arrivals.tenants = sc.tenants;
  arrivals.seed = sc.seed;
  arrivals.iterations_override = 1;  // keep the tenant jobs short
  arrivals.mix = {"GM", "PR"};
  append_poisson_arrivals(stream, arrivals, sim.cluster().node_ids());

  TenantRunReport report = sim.run(stream);
  VariantResult out;
  out.kernel = sim.sim().stats();
  out.makespan = report.makespan;
  std::vector<double> jcts;
  double queueing = 0.0;
  for (const JobCompletion& j : report.jobs) {
    if (j.pool == "batch") continue;
    jcts.push_back(j.jct());
    queueing += j.queueing_delay();
  }
  out.short_jobs = jcts.size();
  if (!jcts.empty()) {
    out.mean = mean_of(jcts);
    out.p50 = percentile_inplace(jcts, 50.0);
    out.p95 = percentile_inplace(jcts, 95.0);
    out.queueing = queueing / static_cast<double>(jcts.size());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rupam;
  Scenario sc;
  if (argc > 1) sc.duration = std::atof(argv[1]);  // smoke runs pass a short horizon
  if (argc > 2) sc.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  bench::print_header("Multi-tenant",
                      "Short-job JCT under FIFO vs FAIR pools with a batch job");

  struct Variant {
    const char* label;
    const char* slug;
    SchedulerKind kind;
    PoolPolicy policy;
    bool with_batch;
  };
  const std::vector<Variant> variants = {
      {"shorts only (Spark)", "shorts_only", SchedulerKind::kSpark, PoolPolicy::kFair, false},
      {"Spark, FIFO + batch", "spark_fifo", SchedulerKind::kSpark, PoolPolicy::kFifo, true},
      {"Spark, FAIR + batch", "spark_fair", SchedulerKind::kSpark, PoolPolicy::kFair, true},
      {"RUPAM, FAIR + batch", "rupam_fair", SchedulerKind::kRupam, PoolPolicy::kFair, true},
  };

  bench::JsonReport json("multi_tenant");
  json.add("duration_s", sc.duration);
  json.add("arrival_rate", sc.rate);
  json.add("tenants", static_cast<double>(sc.tenants));

  TextTable table({"Variant", "Short jobs", "Mean JCT (s)", "p50 (s)", "p95 (s)",
                   "Queueing (s)", "Makespan (s)"});
  std::optional<VariantResult> fifo, fair;
  for (const Variant& v : variants) {
    VariantResult r = run_variant(sc, v.kind, v.policy, v.with_batch);
    json.record_kernel(r.kernel);
    table.add_row({v.label, std::to_string(r.short_jobs), format_fixed(r.mean, 1),
                   format_fixed(r.p50, 1), format_fixed(r.p95, 1),
                   format_fixed(r.queueing, 1), format_fixed(r.makespan, 1)});
    json.add(std::string(v.slug) + "_short_jobs", static_cast<double>(r.short_jobs));
    json.add(std::string(v.slug) + "_mean_jct_s", r.mean);
    json.add(std::string(v.slug) + "_p95_jct_s", r.p95);
    json.add(std::string(v.slug) + "_queueing_s", r.queueing);
    json.add(std::string(v.slug) + "_makespan_s", r.makespan);
    if (std::string(v.slug) == "spark_fifo") fifo = r;
    if (std::string(v.slug) == "spark_fair") fair = r;
  }
  table.print(std::cout);

  bool fair_wins = fair->p95 < fifo->p95;
  json.add("fair_beats_fifo_p95", fair_wins ? "yes" : "no");
  json.write();
  std::cout << "\nReading: under FIFO every short job queues behind the batch job's\n"
               "tasksets; FAIR gives each tenant pool its share of the cluster, so the\n"
               "short jobs' tail collapses toward the no-batch baseline.\n"
            << (fair_wins ? "[shape OK] " : "[shape MISMATCH] ") << "FAIR p95 "
            << format_fixed(fair->p95, 1) << "s vs FIFO p95 " << format_fixed(fifo->p95, 1)
            << "s\n";
  return fair_wins ? 0 : 1;
}
