// Table III: studied workloads and input sizes.
#include "bench_common.hpp"

int main() {
  using namespace rupam;
  bench::print_header("Table III", "Studied workloads and input sizes");

  std::vector<NodeId> nodes(12);
  for (int i = 0; i < 12; ++i) nodes[static_cast<std::size_t>(i)] = i;

  TextTable table({"Workload", "Input size (GB)", "Iterations/queries", "Jobs", "Tasks"});
  for (const auto& preset : table3_workloads()) {
    Application app = build_workload(preset, nodes, 1);
    table.add_row({preset.long_name + " (" + preset.name + ")", format_number(preset.input_gb),
                   std::to_string(preset.iterations), std::to_string(app.jobs.size()),
                   std::to_string(app.total_tasks())});
  }
  table.print(std::cout);
  std::cout << "\nPaper inputs: LR 6, TeraSort 40, SQL 35, PR 0.95 (500K vertices),\n"
               "TC 0.95 (500K vertices), GM 0.96 (8K x 8K matrix), KMeans 3.7 GB.\n";
  return 0;
}
